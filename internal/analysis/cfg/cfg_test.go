package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// build parses src as a file, finds the function named fn, and returns
// its graph plus the fileset for positions.
func build(t *testing.T, src, fn string) (*Graph, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg_test_src.go", "package p\n"+src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == fn {
			return FuncGraph(fd), fset
		}
	}
	t.Fatalf("no function %q", fn)
	return nil, nil
}

// blockWith returns the first block containing a node whose source text
// (for idents and basic literals) equals want.
func blockWith(t *testing.T, g *Graph, want string) *Block {
	t.Helper()
	var found *Block
	g.Visit(func(b *Block, _ int, n ast.Node) {
		if found != nil {
			return
		}
		switch x := n.(type) {
		case *ast.Ident:
			if x.Name == want {
				found = b
			}
		case *ast.BasicLit:
			if x.Value == want {
				found = b
			}
		}
	})
	if found == nil {
		t.Fatalf("no block contains %q", want)
	}
	return found
}

func reaches(g *Graph, from, to *Block) bool {
	if from == to {
		return true
	}
	return g.ReachableFrom(from)[to]
}

func TestStraightLine(t *testing.T) {
	g, _ := build(t, `func f() { a(); b() }`, "f")
	if !g.Live()[g.Exit] {
		t.Fatal("exit unreachable in straight-line function")
	}
	if len(g.Defers) != 0 {
		t.Fatalf("got %d defers, want 0", len(g.Defers))
	}
}

func TestIfElseJoin(t *testing.T) {
	g, _ := build(t, `func f(c bool) { if c { a() } else { b() }; j() }`, "f")
	ba, bb, bj := blockWith(t, g, "a"), blockWith(t, g, "b"), blockWith(t, g, "j")
	if reaches(g, ba, bb) || reaches(g, bb, ba) {
		t.Error("then and else branches must not reach each other")
	}
	if !reaches(g, ba, bj) || !reaches(g, bb, bj) {
		t.Error("both branches must reach the join")
	}
}

// Labeled break must leave the *outer* loop; labeled continue must
// re-enter the outer loop head without running the rest of its body.
func TestLabeledBreakContinue(t *testing.T) {
	g, _ := build(t, `func f() {
outer:
	for {
		for {
			if a() {
				break outer
			}
			if b() {
				continue outer
			}
			inner()
		}
		tail()
	}
	done()
}`, "f")
	bDone, bTail, bInner := blockWith(t, g, "done"), blockWith(t, g, "tail"), blockWith(t, g, "inner")
	bBreak := blockWith(t, g, "a")
	if !g.Live()[bDone] {
		t.Error("break outer must make the post-loop block live")
	}
	// The break-taken path must not fall into the inner loop's remainder.
	if !reaches(g, bBreak, bDone) {
		t.Error("break outer does not reach the function tail")
	}
	// continue outer skips tail(): tail is only reachable when the inner
	// loop exits normally — which it never does (for{} with only
	// break-outer/continue-outer exits), so tail is dead.
	if g.Live()[bTail] {
		t.Error("tail() after an inescapable inner for{} must be dead")
	}
	if !g.Live()[bInner] {
		t.Error("inner loop body must be live")
	}
}

// A goto that jumps into a loop body creates a real entry edge: the loop
// body must be reachable from before the loop without passing its head.
func TestGotoIntoLoop(t *testing.T) {
	g, _ := build(t, `func f(c bool) {
	if c {
		goto inside
	}
	for i := 0; i < 10; i++ {
	inside:
		body()
	}
	after()
}`, "f")
	bGoto := blockWith(t, g, "c")
	bBody := blockWith(t, g, "body")
	bAfter := blockWith(t, g, "after")
	if !reaches(g, bGoto, bBody) {
		t.Error("goto inside must reach the loop body")
	}
	if !reaches(g, bBody, bBody) {
		t.Error("loop body must sit on a cycle (back edge through the head)")
	}
	if !reaches(g, bBody, bAfter) {
		t.Error("loop must still exit to after()")
	}
}

// A backward goto forms a loop: the jumped-to block sits on a cycle.
func TestBackwardGoto(t *testing.T) {
	g, _ := build(t, `func f() {
again:
	work()
	if cond() {
		goto again
	}
	done()
}`, "f")
	bWork := blockWith(t, g, "work")
	if !reaches(g, bWork, bWork) {
		t.Error("backward goto must put the target block on a cycle")
	}
	if !g.Live()[blockWith(t, g, "done")] {
		t.Error("fallthrough exit must stay live")
	}
}

// panic ends the block with an edge to Exit (a deferred recover may turn
// the unwind into a normal return — either way the function is left),
// and statements after it are dead.
func TestDeferRecoverPanic(t *testing.T) {
	g, _ := build(t, `func f() {
	defer func() {
		if r := recover(); r != nil {
			handled()
		}
	}()
	work()
	panic("boom")
	dead()
}`, "f")
	if len(g.Defers) != 1 {
		t.Fatalf("got %d defers, want 1", len(g.Defers))
	}
	if !g.Live()[g.Exit] {
		t.Error("panic must edge to Exit (defer-with-recover leaves the function either way)")
	}
	if g.Live()[blockWith(t, g, "dead")] {
		t.Error("statement after panic must be dead")
	}
	bPanic := blockWith(t, g, `"boom"`)
	hasExit := false
	for _, s := range bPanic.Succs {
		if s == g.Exit {
			hasExit = true
		}
	}
	if !hasExit {
		t.Error("panic block must edge directly to Exit")
	}
	// The deferred literal's body is not part of this graph: handled()
	// must not appear in any block (Visit skips FuncLit bodies).
	g.Visit(func(_ *Block, _ int, n ast.Node) {
		if id, ok := n.(*ast.Ident); ok && id.Name == "handled" {
			t.Error("deferred literal body leaked into the enclosing graph")
		}
	})
}

// A select with no default still branches to every case; with no cases
// at all it blocks forever and everything after is dead.
func TestSelectNoDefault(t *testing.T) {
	g, _ := build(t, `func f(a, b chan int) {
	select {
	case <-a:
		ra()
	case <-b:
		rb()
	}
	after()
}`, "f")
	bra, brb, bAfter := blockWith(t, g, "ra"), blockWith(t, g, "rb"), blockWith(t, g, "after")
	if !g.Live()[bra] || !g.Live()[brb] {
		t.Error("both select cases must be live")
	}
	if reaches(g, bra, brb) || reaches(g, brb, bra) {
		t.Error("select cases must not reach each other")
	}
	if !reaches(g, bra, bAfter) || !reaches(g, brb, bAfter) {
		t.Error("both cases must rejoin after the select")
	}

	g2, _ := build(t, `func g() { before(); select {}; never() }`, "g")
	if g2.Live()[g2.Exit] {
		t.Error("select{} blocks forever: Exit must be unreachable")
	}
	if g2.Live()[blockWith(t, g2, "never")] {
		t.Error("code after select{} must be dead")
	}
}

// Return and the never-returning terminators kill the flow; labels can
// resurrect it.
func TestDeadAfterReturnAndTerminators(t *testing.T) {
	g, _ := build(t, `func f(c bool) {
	if c {
		return
	}
	live()
	os.Exit(1)
	dead1()
}`, "f")
	if !g.Live()[blockWith(t, g, "live")] {
		t.Error("else path must be live")
	}
	if g.Live()[blockWith(t, g, "dead1")] {
		t.Error("code after os.Exit must be dead")
	}

	// A live goto resurrects code sitting after a return; a label only
	// referenced from dead code stays dead.
	g2, _ := build(t, `func g(c bool) {
	if c {
		goto resurrect
	}
	return
resurrect:
	lives()
}`, "g")
	if !g2.Live()[blockWith(t, g2, "lives")] {
		t.Error("a live goto must resurrect the labeled block after a return")
	}

	g3, _ := build(t, `func h() {
	return
unreferenced:
	stays()
	goto unreferenced
}`, "h")
	if g3.Live()[blockWith(t, g3, "stays")] {
		t.Error("a label reachable only from dead code must stay dead")
	}
}

// Switch: no default leaves a fall-past edge; fallthrough chains case
// bodies; with a default the head cannot skip every case.
func TestSwitchFallthroughAndDefault(t *testing.T) {
	g, _ := build(t, `func f(x int) {
	switch x {
	case 1:
		one()
		fallthrough
	case 2:
		two()
	}
	after()
}`, "f")
	b1, b2 := blockWith(t, g, "one"), blockWith(t, g, "two")
	if !reaches(g, b1, b2) {
		t.Error("fallthrough must edge into the next case body")
	}
	if !g.Live()[blockWith(t, g, "after")] {
		t.Error("switch without default must be skippable")
	}

	g2, _ := build(t, `func g(x int) {
	switch {
	case x > 0:
		pos()
		return
	default:
		neg()
		return
	}
}`, "g")
	// Every case returns and a default exists: the switch.after block is
	// dead but Exit is still reached through the returns.
	if !g2.Live()[g2.Exit] {
		t.Error("returns inside switch must reach Exit")
	}
}

// Range loops: body cycles through the head, the loop exits to after,
// and the ranged expression sits in the head block for inspection.
func TestRangeLoop(t *testing.T) {
	g, _ := build(t, `func f(xs []int) {
	for range xs {
		body()
	}
	after()
}`, "f")
	bBody, bAfter := blockWith(t, g, "body"), blockWith(t, g, "after")
	if !reaches(g, bBody, bBody) {
		t.Error("range body must sit on a cycle")
	}
	if !reaches(g, bBody, bAfter) {
		t.Error("range must exit to after()")
	}
	bX := blockWith(t, g, "xs")
	if !strings.HasPrefix(bX.Kind, "range.head") {
		t.Errorf("ranged expression lives in %q, want the range head", bX.Kind)
	}
}

// Dominators: the entry dominates everything; a branch dominates its own
// arm but not the join; the loop head dominates the body.
func TestDominators(t *testing.T) {
	g, _ := build(t, `func f(c bool) {
	pre()
	if c {
		a()
	} else {
		b()
	}
	join()
	for cond() {
		body()
	}
	after()
}`, "f")
	dom := g.Dominators()
	bPre, ba, bJoin := blockWith(t, g, "pre"), blockWith(t, g, "a"), blockWith(t, g, "join")
	bCond, bBody := blockWith(t, g, "cond"), blockWith(t, g, "body")
	if !dom[bJoin][bPre] {
		t.Error("pre must dominate the join")
	}
	if dom[bJoin][ba] {
		t.Error("one branch arm must not dominate the join")
	}
	if !dom[bBody][bCond] {
		t.Error("loop head must dominate the loop body")
	}
	if !dom[ba][ba] {
		t.Error("every block dominates itself")
	}
}

// `for {}` without break: everything after is dead, but the body is live
// and cyclic.
func TestForeverLoop(t *testing.T) {
	g, _ := build(t, `func f() {
	for {
		spin()
	}
	dead()
}`, "f")
	bSpin := blockWith(t, g, "spin")
	if !g.Live()[bSpin] || !reaches(g, bSpin, bSpin) {
		t.Error("forever-loop body must be live and cyclic")
	}
	if g.Live()[blockWith(t, g, "dead")] {
		t.Error("code after for{} must be dead")
	}
	if g.Live()[g.Exit] {
		t.Error("for{} without break cannot reach Exit")
	}
}
