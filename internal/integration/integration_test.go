// Package integration exercises the complete deployment across component
// restarts — the durability story the paper's Persistent Manager exists
// for: events and rules live in the database, so after BOTH the server and
// the agent restart, the whole active behaviour is restored from the
// snapshot alone.
package integration

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/activedb/ecaagent/internal/agent"
	"github.com/activedb/ecaagent/internal/catalog"
	"github.com/activedb/ecaagent/internal/client"
	"github.com/activedb/ecaagent/internal/engine"
	"github.com/activedb/ecaagent/internal/server"
)

func quiet(string, ...any) {}

type deployment struct {
	srv   *server.Server
	agent *agent.Agent
}

func startDeployment(t *testing.T, cat *catalog.Catalog, snapshot string) *deployment {
	t.Helper()
	srv := server.New(engine.New(cat))
	srv.Logf = quiet
	srv.SnapshotPath = snapshot
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	a, err := agent.New(agent.Config{Dial: agent.TCPDialer(srv.Addr()), Logf: quiet})
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	if err := a.ListenGateway("127.0.0.1:0"); err != nil {
		a.Close()
		srv.Close()
		t.Fatal(err)
	}
	return &deployment{srv: srv, agent: a}
}

func (d *deployment) stop() {
	d.agent.Close()
	d.srv.Close()
}

func (d *deployment) connect(t *testing.T, user, db string) *client.Conn {
	t.Helper()
	c, err := client.Connect(d.agent.GatewayAddr(), client.Options{User: user, Database: db})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func waitAction(t *testing.T, a *agent.Agent) agent.ActionResult {
	t.Helper()
	select {
	case res := <-a.ActionDone:
		return res
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for action")
		return agent.ActionResult{}
	}
}

// TestFullRestartDurability: define rules, checkpoint, kill everything,
// restart server from snapshot and a brand-new agent — the rulebase and
// its behaviour survive.
func TestFullRestartDurability(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "server.snap")

	d1 := startDeployment(t, catalog.New(), snap)
	c := d1.connect(t, "sharma", "")
	if err := c.MustExec(`create database sentineldb
go
use sentineldb
create table stock (symbol varchar(10), price float null)
go`); err != nil {
		t.Fatal(err)
	}
	for _, sql := range []string{
		"use sentineldb create trigger t_add on stock for insert event addStk as print 'add fired'",
		"use sentineldb create trigger t_del on stock for delete event delStk as print 'del fired'",
		`use sentineldb
go
create trigger t_and event both = addStk ^ delStk CUMULATIVE as
print 'composite fired'
select symbol from stock.inserted
go`,
	} {
		if err := c.MustExec(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	// Fire once before the restart to advance vNo state.
	if err := c.MustExec("use sentineldb insert stock values ('PRE', 1)"); err != nil {
		t.Fatal(err)
	}
	waitAction(t, d1.agent)
	c.Close()
	if err := d1.srv.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	d1.stop()

	// Cold restart: catalog from disk, brand-new agent process.
	cat, err := catalog.LoadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	d2 := startDeployment(t, cat, snap)
	defer d2.stop()
	if got := len(d2.agent.Triggers()); got != 3 {
		t.Fatalf("restored triggers: %d (%v)", got, d2.agent.Triggers())
	}

	c2 := d2.connect(t, "sharma", "sentineldb")
	defer c2.Close()
	if err := c2.MustExec("insert stock values ('POST', 2)"); err != nil {
		t.Fatal(err)
	}
	res := waitAction(t, d2.agent)
	if res.Err != nil || !strings.Contains(strings.Join(res.Messages, " "), "add fired") {
		t.Fatalf("primitive rule after restart: %+v", res)
	}
	// vNo continuity: the restored SysPrimitiveEvent counter keeps rising.
	rs, err := c2.Query("select vNo from SysPrimitiveEvent where eventName = 'sentineldb.sharma.addStk'")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Rows[0][0].Int() != 2 {
		t.Errorf("vNo after restart: %v (state reset?)", rs.Rows[0])
	}
	// The composite still detects across the restart boundary for new
	// occurrences.
	if err := c2.MustExec("delete stock where symbol = 'POST'"); err != nil {
		t.Fatal(err)
	}
	rules := map[string]bool{}
	for i := 0; i < 2; i++ { // t_del + t_and
		res := waitAction(t, d2.agent)
		rules[res.Rule[strings.LastIndex(res.Rule, ".")+1:]] = true
	}
	if !rules["t_del"] || !rules["t_and"] {
		t.Errorf("post-restart composite: %v", rules)
	}
}

// TestScaleSmoke: dozens of events and rules across several tables and
// contexts, hammered concurrently; every action completes and the counts
// add up.
func TestScaleSmoke(t *testing.T) {
	d := startDeployment(t, catalog.New(), "")
	defer d.stop()
	c := d.connect(t, "ops", "")
	if err := c.MustExec("create database load"); err != nil {
		t.Fatal(err)
	}
	const tables = 8
	for i := 0; i < tables; i++ {
		if err := c.MustExec(fmt.Sprintf("use load create table t%d (a int null)", i)); err != nil {
			t.Fatal(err)
		}
		if err := c.MustExec(fmt.Sprintf(
			"use load create trigger trg%d on t%d for insert event ev%d as print 'p%d'", i, i, i, i)); err != nil {
			t.Fatal(err)
		}
	}
	// A second rule per even event, plus one composite spanning two tables.
	extra := 0
	for i := 0; i < tables; i += 2 {
		if err := c.MustExec(fmt.Sprintf(
			"use load create trigger xtrg%d event ev%d CHRONICLE as print 'x%d'", i, i, i)); err != nil {
			t.Fatal(err)
		}
		extra++
	}
	if err := c.MustExec("use load create trigger cross event crossEv = ev0 ^ ev1 CHRONICLE as print 'cross'"); err != nil {
		t.Fatal(err)
	}

	const rounds = 20
	go func() {
		conn := d.connect(t, "ops", "load")
		defer conn.Close()
		for r := 0; r < rounds; r++ {
			for i := 0; i < tables; i++ {
				if err := conn.MustExec(fmt.Sprintf("insert t%d values (%d)", i, r)); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
			}
		}
	}()

	// Expected actions: tables rules (8/insert-round) + extra (4/round) +
	// cross (1/round, chronicle pairs each round's ev0+ev1).
	want := rounds * (tables + extra + 1)
	counts := map[string]int{}
	for i := 0; i < want; i++ {
		res := waitAction(t, d.agent)
		if res.Err != nil {
			t.Fatalf("action failed: %v", res.Err)
		}
		counts[res.Rule]++
	}
	if got := counts["load.ops.cross"]; got != rounds {
		t.Errorf("cross composite fired %d, want %d", got, rounds)
	}
	for i := 0; i < tables; i++ {
		if got := counts[fmt.Sprintf("load.ops.trg%d", i)]; got != rounds {
			t.Errorf("trg%d fired %d, want %d", i, got, rounds)
		}
	}
	stats := d.agent.Stats()
	if stats.ActionsRun < uint64(want) {
		t.Errorf("stats.ActionsRun = %d, want >= %d", stats.ActionsRun, want)
	}
	if stats.NotificationsDropped != 0 {
		t.Errorf("dropped notifications: %d", stats.NotificationsDropped)
	}
}

// TestIsqlStyleSessionThroughAgent drives the ecasql usage pattern: one
// connection, GO-separated batches, introspection via sp_help.
func TestIsqlStyleSessionThroughAgent(t *testing.T) {
	d := startDeployment(t, catalog.New(), "")
	defer d.stop()
	c := d.connect(t, "sharma", "")
	defer c.Close()
	script := `create database sentineldb
go
use sentineldb
create table stock (symbol varchar(10), price float null)
go
insert stock values ('IBM', 100)
insert stock values ('T', 20)
go
select symbol, price from stock order by price desc
go
exec sp_help stock
go`
	results, err := c.Exec(script)
	if err != nil {
		t.Fatal(err)
	}
	var rowSets int
	for _, rs := range results {
		if rs.Schema != nil && len(rs.Rows) > 0 {
			rowSets++
		}
	}
	if rowSets != 2 { // the SELECT and the sp_help description
		t.Errorf("row-bearing result sets: %d", rowSets)
	}
}
