package sqltypes

import (
	"fmt"
	"strings"
)

// Column describes one column of a schema.
type Column struct {
	Name     string
	Type     Type
	Nullable bool
}

// Schema is an ordered list of columns. Column name lookup is
// case-insensitive, matching the server's identifier rules.
type Schema struct {
	Columns []Column
}

// NewSchema builds a Schema from columns.
func NewSchema(cols ...Column) *Schema {
	return &Schema{Columns: cols}
}

// Clone returns a deep copy of the schema.
func (s *Schema) Clone() *Schema {
	cols := make([]Column, len(s.Columns))
	copy(cols, s.Columns)
	return &Schema{Columns: cols}
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Columns) }

// Index returns the position of the named column, or -1.
func (s *Schema) Index(name string) int {
	for i, c := range s.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Column returns the column at position i.
func (s *Schema) Column(i int) Column { return s.Columns[i] }

// Names returns the column names in order.
func (s *Schema) Names() []string {
	names := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		names[i] = c.Name
	}
	return names
}

// AddColumn appends a column; it fails if the name already exists.
func (s *Schema) AddColumn(c Column) error {
	if s.Index(c.Name) >= 0 {
		return fmt.Errorf("column %q already exists", c.Name)
	}
	s.Columns = append(s.Columns, c)
	return nil
}

// String renders the schema as "(name type, ...)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", c.Name, c.Type)
		if !c.Nullable {
			b.WriteString(" not null")
		}
	}
	b.WriteByte(')')
	return b.String()
}

// Row is one tuple of values, positionally aligned with a Schema.
type Row []Value

// Clone returns a copy of the row. Values are immutable so a shallow copy
// suffices.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// String renders the row for diagnostics.
func (r Row) String() string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = v.AsString()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Equal reports whether two rows are value-wise Equal.
func (r Row) Equal(o Row) bool {
	if len(r) != len(o) {
		return false
	}
	for i := range r {
		if !r[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// ResultSet is a fully materialized query result: a schema plus rows. It is
// the unit the engine returns, the wire protocol transports, and the client
// library exposes.
type ResultSet struct {
	Schema *Schema
	Rows   []Row
	// Messages carries informational output (PRINT statements, trigger
	// chatter) produced while the statement ran, in order.
	Messages []string
	// RowsAffected is the DML count reported in the DONE token.
	RowsAffected int
}

// Format renders the result set as an aligned text table, used by the
// interactive client and the figure-regeneration harness.
func (rs *ResultSet) Format() string {
	if rs == nil || rs.Schema == nil || rs.Schema.Len() == 0 {
		return ""
	}
	names := rs.Schema.Names()
	widths := make([]int, len(names))
	for i, n := range names {
		widths[i] = len(n)
	}
	cells := make([][]string, len(rs.Rows))
	for ri, row := range rs.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := v.AsString()
			cells[ri][ci] = s
			if ci < len(widths) && len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var b strings.Builder
	writeLine := func(parts []string) {
		for i, p := range parts {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(p)
			if pad := widths[i] - len(p); pad > 0 && i < len(parts)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	writeLine(names)
	rules := make([]string, len(names))
	for i := range rules {
		rules[i] = strings.Repeat("-", widths[i])
	}
	writeLine(rules)
	for _, row := range cells {
		writeLine(row)
	}
	return b.String()
}
