// Package sqltypes defines the value and type system shared by the SQL
// engine, the wire protocol, and the ECA agent.
//
// The type lattice mirrors the subset of Sybase System 11 types the paper's
// generated code relies on: INT, FLOAT, BIT, CHAR(n), VARCHAR(n), TEXT and
// DATETIME. Every value is nullable; NULL propagates through arithmetic and
// comparisons with three-valued logic, matching the behaviour client code
// written against the original server would observe.
package sqltypes

import (
	"fmt"
	"strings"
	"time"
)

// Kind enumerates the storage classes of the type system.
type Kind int

// The supported type kinds.
const (
	KindNull Kind = iota // the type of an untyped NULL literal
	KindInt
	KindFloat
	KindBit
	KindChar
	KindVarChar
	KindText
	KindDateTime
)

// String returns the SQL spelling of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBit:
		return "bit"
	case KindChar:
		return "char"
	case KindVarChar:
		return "varchar"
	case KindText:
		return "text"
	case KindDateTime:
		return "datetime"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Type is a complete column type: a kind plus, for character kinds, a
// declared length.
type Type struct {
	Kind Kind
	// Length is the declared length for CHAR and VARCHAR columns. It is 0
	// for all other kinds (TEXT is unbounded, as in the original server).
	Length int
}

// Common pre-built types.
var (
	Int      = Type{Kind: KindInt}
	Float    = Type{Kind: KindFloat}
	Bit      = Type{Kind: KindBit}
	Text     = Type{Kind: KindText}
	DateTime = Type{Kind: KindDateTime}
)

// VarChar returns a VARCHAR(n) type.
func VarChar(n int) Type { return Type{Kind: KindVarChar, Length: n} }

// Char returns a CHAR(n) type.
func Char(n int) Type { return Type{Kind: KindChar, Length: n} }

// String returns the SQL spelling of the type, e.g. "varchar(30)".
func (t Type) String() string {
	switch t.Kind {
	case KindChar, KindVarChar:
		return fmt.Sprintf("%s(%d)", t.Kind, t.Length)
	default:
		return t.Kind.String()
	}
}

// IsCharacter reports whether the type holds character data.
func (t Type) IsCharacter() bool {
	return t.Kind == KindChar || t.Kind == KindVarChar || t.Kind == KindText
}

// IsNumeric reports whether the type holds numeric data.
func (t Type) IsNumeric() bool {
	return t.Kind == KindInt || t.Kind == KindFloat || t.Kind == KindBit
}

// ParseType parses a SQL type spelling such as "int", "varchar(30)" or
// "datetime". It is case-insensitive.
func ParseType(s string) (Type, error) {
	base := strings.ToLower(strings.TrimSpace(s))
	length := 0
	if i := strings.IndexByte(base, '('); i >= 0 {
		if !strings.HasSuffix(base, ")") {
			return Type{}, fmt.Errorf("malformed type %q", s)
		}
		n, err := parseInt(strings.TrimSpace(base[i+1 : len(base)-1]))
		if err != nil {
			return Type{}, fmt.Errorf("malformed type length in %q", s)
		}
		length = n
		base = strings.TrimSpace(base[:i])
	}
	switch base {
	case "int", "integer", "smallint", "tinyint":
		return Int, nil
	case "float", "real", "double", "numeric", "decimal", "money":
		return Float, nil
	case "bit":
		return Bit, nil
	case "char":
		if length <= 0 {
			length = 1
		}
		return Char(length), nil
	case "varchar":
		if length <= 0 {
			length = 1
		}
		return VarChar(length), nil
	case "text":
		return Text, nil
	case "datetime", "smalldatetime":
		return DateTime, nil
	default:
		return Type{}, fmt.Errorf("unknown type %q", s)
	}
}

func parseInt(s string) (int, error) {
	if s == "" {
		return 0, fmt.Errorf("empty integer")
	}
	n := 0
	for _, r := range s {
		if r < '0' || r > '9' {
			return 0, fmt.Errorf("bad digit %q", r)
		}
		n = n*10 + int(r-'0')
		if n > 1<<30 {
			return 0, fmt.Errorf("integer overflow")
		}
	}
	return n, nil
}

// DateTimeFormat is the canonical textual layout for DATETIME values. It
// mimics the default Sybase display format closely enough for round-trips.
const DateTimeFormat = "2006-01-02 15:04:05.000"

// ParseDateTime parses the textual forms the engine accepts for DATETIME
// literals.
func ParseDateTime(s string) (time.Time, error) {
	for _, layout := range []string{
		DateTimeFormat,
		"2006-01-02 15:04:05",
		"2006-01-02T15:04:05",
		"2006-01-02",
		"Jan 2 2006 3:04PM",
	} {
		if t, err := time.Parse(layout, s); err == nil {
			return t, nil
		}
	}
	return time.Time{}, fmt.Errorf("cannot parse datetime %q", s)
}
