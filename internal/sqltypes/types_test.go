package sqltypes

import (
	"testing"
	"time"
)

func TestParseType(t *testing.T) {
	cases := []struct {
		in   string
		want Type
	}{
		{"int", Int},
		{"INTEGER", Int},
		{"smallint", Int},
		{"float", Float},
		{"money", Float},
		{"bit", Bit},
		{"varchar(30)", VarChar(30)},
		{"VARCHAR( 12 )", VarChar(12)},
		{"char(10)", Char(10)},
		{"char", Char(1)},
		{"text", Text},
		{"datetime", DateTime},
		{"smalldatetime", DateTime},
	}
	for _, c := range cases {
		got, err := ParseType(c.in)
		if err != nil {
			t.Fatalf("ParseType(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("ParseType(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseTypeErrors(t *testing.T) {
	for _, in := range []string{"", "blob", "varchar(", "varchar(x)", "int(3))("} {
		if _, err := ParseType(in); err == nil {
			t.Errorf("ParseType(%q) succeeded, want error", in)
		}
	}
}

func TestTypeString(t *testing.T) {
	if got := VarChar(30).String(); got != "varchar(30)" {
		t.Errorf("VarChar(30).String() = %q", got)
	}
	if got := Int.String(); got != "int" {
		t.Errorf("Int.String() = %q", got)
	}
	if got := DateTime.String(); got != "datetime" {
		t.Errorf("DateTime.String() = %q", got)
	}
}

func TestTypePredicates(t *testing.T) {
	if !VarChar(5).IsCharacter() || !Text.IsCharacter() || !Char(2).IsCharacter() {
		t.Error("character predicate failed")
	}
	if Int.IsCharacter() || DateTime.IsCharacter() {
		t.Error("non-character reported as character")
	}
	if !Int.IsNumeric() || !Float.IsNumeric() || !Bit.IsNumeric() {
		t.Error("numeric predicate failed")
	}
	if Text.IsNumeric() || DateTime.IsNumeric() {
		t.Error("non-numeric reported as numeric")
	}
}

func TestParseDateTime(t *testing.T) {
	want := time.Date(2026, 7, 4, 10, 30, 0, 0, time.UTC)
	for _, in := range []string{"2026-07-04 10:30:00", "2026-07-04T10:30:00"} {
		got, err := ParseDateTime(in)
		if err != nil {
			t.Fatalf("ParseDateTime(%q): %v", in, err)
		}
		if !got.Equal(want) {
			t.Errorf("ParseDateTime(%q) = %v, want %v", in, got, want)
		}
	}
	if _, err := ParseDateTime("not a date"); err == nil {
		t.Error("ParseDateTime accepted garbage")
	}
	if d, err := ParseDateTime("2026-07-04"); err != nil || d.Hour() != 0 {
		t.Errorf("date-only parse: %v %v", d, err)
	}
}
