package sqltypes

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Value is a single SQL value. The zero Value is NULL.
//
// Values are immutable once constructed; the engine copies rows rather than
// mutating values in place.
type Value struct {
	kind Kind
	i    int64     // KindInt, KindBit
	f    float64   // KindFloat
	s    string    // character kinds
	t    time.Time // KindDateTime
}

// Null is the NULL value.
var Null = Value{}

// NewInt returns an INT value.
func NewInt(v int64) Value { return Value{kind: KindInt, i: v} }

// NewFloat returns a FLOAT value.
func NewFloat(v float64) Value { return Value{kind: KindFloat, f: v} }

// NewBit returns a BIT value (normalized to 0 or 1).
func NewBit(b bool) Value {
	if b {
		return Value{kind: KindBit, i: 1}
	}
	return Value{kind: KindBit, i: 0}
}

// NewString returns a VARCHAR value.
func NewString(s string) Value { return Value{kind: KindVarChar, s: s} }

// NewText returns a TEXT value.
func NewText(s string) Value { return Value{kind: KindText, s: s} }

// NewDateTime returns a DATETIME value truncated to millisecond precision,
// the engine's datetime resolution.
func NewDateTime(t time.Time) Value {
	return Value{kind: KindDateTime, t: t.Truncate(time.Millisecond)}
}

// Kind returns the runtime kind of the value (KindNull for NULL).
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Int returns the value as an int64. It panics unless the value is INT or
// BIT; use AsInt for coercion.
func (v Value) Int() int64 {
	if v.kind != KindInt && v.kind != KindBit {
		panic(fmt.Sprintf("sqltypes: Int() on %s value", v.kind))
	}
	return v.i
}

// Float returns the value as a float64. It panics unless the value is
// FLOAT; use AsFloat for coercion.
func (v Value) Float() float64 {
	if v.kind != KindFloat {
		panic(fmt.Sprintf("sqltypes: Float() on %s value", v.kind))
	}
	return v.f
}

// Str returns the character payload. It panics on non-character values;
// use AsString for display conversion.
func (v Value) Str() string {
	if !(Type{Kind: v.kind}).IsCharacter() {
		panic(fmt.Sprintf("sqltypes: Str() on %s value", v.kind))
	}
	return v.s
}

// Time returns the DATETIME payload. It panics on other kinds.
func (v Value) Time() time.Time {
	if v.kind != KindDateTime {
		panic(fmt.Sprintf("sqltypes: Time() on %s value", v.kind))
	}
	return v.t
}

// AsInt coerces the value to an integer. NULL coerces to (0, false).
func (v Value) AsInt() (int64, bool) {
	switch v.kind {
	case KindInt, KindBit:
		return v.i, true
	case KindFloat:
		return int64(v.f), true
	case KindChar, KindVarChar, KindText:
		n, err := strconv.ParseInt(strings.TrimSpace(v.s), 10, 64)
		return n, err == nil
	default:
		return 0, false
	}
}

// AsFloat coerces the value to a float. NULL coerces to (0, false).
func (v Value) AsFloat() (float64, bool) {
	switch v.kind {
	case KindInt, KindBit:
		return float64(v.i), true
	case KindFloat:
		return v.f, true
	case KindChar, KindVarChar, KindText:
		f, err := strconv.ParseFloat(strings.TrimSpace(v.s), 64)
		return f, err == nil
	default:
		return 0, false
	}
}

// AsBool coerces the value to a truth value using SQL conventions
// (non-zero numerics are true). NULL coerces to (false, false).
func (v Value) AsBool() (bool, bool) {
	switch v.kind {
	case KindInt, KindBit:
		return v.i != 0, true
	case KindFloat:
		return v.f != 0, true
	default:
		return false, false
	}
}

// AsString renders the value for display or protocol transport. NULL
// renders as "NULL".
func (v Value) AsString() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt, KindBit:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindChar, KindVarChar, KindText:
		return v.s
	case KindDateTime:
		return v.t.Format(DateTimeFormat)
	default:
		return fmt.Sprintf("<%s>", v.kind)
	}
}

// SQLLiteral renders the value as a SQL literal that re-parses to an equal
// value; used by the agent's code generator and the persistence codec.
func (v Value) SQLLiteral() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindChar, KindVarChar, KindText:
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	case KindDateTime:
		return "'" + v.t.Format(DateTimeFormat) + "'"
	default:
		return v.AsString()
	}
}

// Equal reports strict equality (same kind class and payload). Two NULLs
// are Equal (useful for tests), although SQL comparison treats NULL = NULL
// as unknown; see Compare.
func (v Value) Equal(o Value) bool {
	c, ok := v.Compare(o)
	if v.IsNull() && o.IsNull() {
		return true
	}
	return ok && c == 0
}

// Compare orders two values. The second result is false when the
// comparison is unknown (either side NULL, or incomparable kinds), matching
// SQL three-valued logic.
func (v Value) Compare(o Value) (int, bool) {
	if v.IsNull() || o.IsNull() {
		return 0, false
	}
	vt, ot := Type{Kind: v.kind}, Type{Kind: o.kind}
	switch {
	case vt.IsNumeric() && ot.IsNumeric():
		a, _ := v.AsFloat()
		b, _ := o.AsFloat()
		switch {
		case a < b:
			return -1, true
		case a > b:
			return 1, true
		default:
			return 0, true
		}
	case vt.IsCharacter() && ot.IsCharacter():
		return strings.Compare(v.s, o.s), true
	case v.kind == KindDateTime && o.kind == KindDateTime:
		switch {
		case v.t.Before(o.t):
			return -1, true
		case v.t.After(o.t):
			return 1, true
		default:
			return 0, true
		}
	case vt.IsCharacter() && ot.IsNumeric(), vt.IsNumeric() && ot.IsCharacter():
		// The original server implicitly converts; we convert the string
		// side to a number when possible.
		a, aok := v.AsFloat()
		b, bok := o.AsFloat()
		if !aok || !bok {
			return 0, false
		}
		switch {
		case a < b:
			return -1, true
		case a > b:
			return 1, true
		default:
			return 0, true
		}
	default:
		return 0, false
	}
}

// Convert coerces the value to the given column type, applying CHAR/VARCHAR
// truncation to the declared length as the original server does. NULL
// converts to NULL for any type.
func (v Value) Convert(t Type) (Value, error) {
	if v.IsNull() {
		return Null, nil
	}
	switch t.Kind {
	case KindInt:
		n, ok := v.AsInt()
		if !ok {
			return Null, fmt.Errorf("cannot convert %s %q to int", v.kind, v.AsString())
		}
		return NewInt(n), nil
	case KindFloat:
		f, ok := v.AsFloat()
		if !ok {
			return Null, fmt.Errorf("cannot convert %s %q to float", v.kind, v.AsString())
		}
		return NewFloat(f), nil
	case KindBit:
		n, ok := v.AsInt()
		if !ok {
			return Null, fmt.Errorf("cannot convert %s %q to bit", v.kind, v.AsString())
		}
		return NewBit(n != 0), nil
	case KindChar, KindVarChar:
		s := v.AsString()
		if t.Length > 0 && len(s) > t.Length {
			s = s[:t.Length]
		}
		return Value{kind: t.Kind, s: s}, nil
	case KindText:
		return NewText(v.AsString()), nil
	case KindDateTime:
		switch v.kind {
		case KindDateTime:
			return v, nil
		case KindChar, KindVarChar, KindText:
			tm, err := ParseDateTime(v.s)
			if err != nil {
				return Null, err
			}
			return NewDateTime(tm), nil
		default:
			return Null, fmt.Errorf("cannot convert %s to datetime", v.kind)
		}
	default:
		return Null, fmt.Errorf("cannot convert to %s", t)
	}
}

// Arith applies a binary arithmetic operator (+ - * / %) to two values with
// SQL semantics: NULL-propagating, int/int stays int ('/' truncates),
// string '+' concatenates.
func Arith(op byte, a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	at, bt := Type{Kind: a.kind}, Type{Kind: b.kind}
	if op == '+' && (at.IsCharacter() || bt.IsCharacter()) {
		return NewString(a.AsString() + b.AsString()), nil
	}
	if !at.IsNumeric() || !bt.IsNumeric() {
		return Null, fmt.Errorf("operator %c not defined for %s and %s", op, a.kind, b.kind)
	}
	intOp := (a.kind == KindInt || a.kind == KindBit) && (b.kind == KindInt || b.kind == KindBit)
	if intOp {
		x, y := a.i, b.i
		switch op {
		case '+':
			return NewInt(x + y), nil
		case '-':
			return NewInt(x - y), nil
		case '*':
			return NewInt(x * y), nil
		case '/':
			if y == 0 {
				return Null, fmt.Errorf("division by zero")
			}
			return NewInt(x / y), nil
		case '%':
			if y == 0 {
				return Null, fmt.Errorf("modulo by zero")
			}
			return NewInt(x % y), nil
		}
	}
	x, _ := a.AsFloat()
	y, _ := b.AsFloat()
	switch op {
	case '+':
		return NewFloat(x + y), nil
	case '-':
		return NewFloat(x - y), nil
	case '*':
		return NewFloat(x * y), nil
	case '/':
		if y == 0 {
			return Null, fmt.Errorf("division by zero")
		}
		return NewFloat(x / y), nil
	case '%':
		if y == 0 {
			return Null, fmt.Errorf("modulo by zero")
		}
		return NewFloat(math.Mod(x, y)), nil
	}
	return Null, fmt.Errorf("unknown operator %c", op)
}

// Like implements the SQL LIKE operator with % and _ wildcards.
func Like(s, pattern string) bool {
	return likeMatch(s, pattern)
}

func likeMatch(s, p string) bool {
	// Iterative matcher with backtracking over the last '%' seen.
	si, pi := 0, 0
	star, match := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '_' || equalFoldByte(p[pi], s[si])):
			si++
			pi++
		case pi < len(p) && p[pi] == '%':
			star = pi
			match = si
			pi++
		case star >= 0:
			pi = star + 1
			match++
			si = match
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}

func equalFoldByte(a, b byte) bool {
	if 'A' <= a && a <= 'Z' {
		a += 'a' - 'A'
	}
	if 'A' <= b && b <= 'Z' {
		b += 'a' - 'A'
	}
	return a == b
}
