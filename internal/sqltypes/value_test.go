package sqltypes

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestNullSemantics(t *testing.T) {
	if !Null.IsNull() {
		t.Fatal("Null is not null")
	}
	if _, ok := Null.Compare(NewInt(1)); ok {
		t.Error("NULL comparison should be unknown")
	}
	if _, ok := NewInt(1).Compare(Null); ok {
		t.Error("comparison with NULL should be unknown")
	}
	got, err := Arith('+', Null, NewInt(3))
	if err != nil || !got.IsNull() {
		t.Errorf("NULL + 3 = %v, %v; want NULL", got, err)
	}
	if Null.AsString() != "NULL" || Null.SQLLiteral() != "NULL" {
		t.Error("NULL rendering wrong")
	}
	v, err := Null.Convert(Int)
	if err != nil || !v.IsNull() {
		t.Error("NULL should convert to NULL")
	}
}

func TestValueAccessors(t *testing.T) {
	if NewInt(42).Int() != 42 {
		t.Error("Int accessor")
	}
	if NewFloat(2.5).Float() != 2.5 {
		t.Error("Float accessor")
	}
	if NewString("hi").Str() != "hi" {
		t.Error("Str accessor")
	}
	now := time.Now()
	if !NewDateTime(now).Time().Equal(now.Truncate(time.Millisecond)) {
		t.Error("Time accessor should truncate to ms")
	}
	if NewBit(true).Int() != 1 || NewBit(false).Int() != 0 {
		t.Error("Bit normalization")
	}
}

func TestAccessorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("Int on string", func() { NewString("x").Int() })
	mustPanic("Float on int", func() { NewInt(1).Float() })
	mustPanic("Str on int", func() { NewInt(1).Str() })
	mustPanic("Time on string", func() { NewString("x").Time() })
}

func TestCoercions(t *testing.T) {
	if n, ok := NewString(" 42 ").AsInt(); !ok || n != 42 {
		t.Errorf("string->int coercion: %v %v", n, ok)
	}
	if f, ok := NewInt(3).AsFloat(); !ok || f != 3 {
		t.Errorf("int->float coercion: %v %v", f, ok)
	}
	if _, ok := NewString("abc").AsInt(); ok {
		t.Error("garbage string coerced to int")
	}
	if b, ok := NewInt(5).AsBool(); !ok || !b {
		t.Error("nonzero int should be true")
	}
	if b, ok := NewFloat(0).AsBool(); !ok || b {
		t.Error("zero float should be false")
	}
	if _, ok := NewString("x").AsBool(); ok {
		t.Error("string has no truth value")
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewFloat(2.5), 1},
		{NewString("abc"), NewString("abd"), -1},
		{NewString("10"), NewInt(9), 1}, // implicit numeric conversion
		{NewDateTime(time.Unix(100, 0)), NewDateTime(time.Unix(200, 0)), -1},
	}
	for _, c := range cases {
		got, ok := c.a.Compare(c.b)
		if !ok || got != c.want {
			t.Errorf("Compare(%v, %v) = %d,%v; want %d", c.a, c.b, got, ok, c.want)
		}
	}
	if _, ok := NewString("x").Compare(NewInt(1)); ok {
		t.Error("non-numeric string vs int should be unknown")
	}
	if _, ok := NewDateTime(time.Now()).Compare(NewInt(1)); ok {
		t.Error("datetime vs int should be unknown")
	}
}

func TestConvert(t *testing.T) {
	v, err := NewString("hello world").Convert(VarChar(5))
	if err != nil || v.Str() != "hello" {
		t.Errorf("varchar truncation: %v %v", v, err)
	}
	v, err = NewFloat(3.9).Convert(Int)
	if err != nil || v.Int() != 3 {
		t.Errorf("float->int: %v %v", v, err)
	}
	v, err = NewString("2026-07-04 00:00:00").Convert(DateTime)
	if err != nil || v.Time().Year() != 2026 {
		t.Errorf("string->datetime: %v %v", v, err)
	}
	if _, err = NewString("junk").Convert(DateTime); err == nil {
		t.Error("junk->datetime should fail")
	}
	if _, err = NewDateTime(time.Now()).Convert(Int); err == nil {
		t.Error("datetime->int should fail")
	}
	v, err = NewInt(7).Convert(Bit)
	if err != nil || v.Int() != 1 {
		t.Errorf("int->bit: %v %v", v, err)
	}
}

func TestArith(t *testing.T) {
	check := func(op byte, a, b Value, want Value) {
		t.Helper()
		got, err := Arith(op, a, b)
		if err != nil || !got.Equal(want) {
			t.Errorf("Arith(%c, %v, %v) = %v, %v; want %v", op, a, b, got, err, want)
		}
	}
	check('+', NewInt(2), NewInt(3), NewInt(5))
	check('-', NewInt(2), NewInt(3), NewInt(-1))
	check('*', NewInt(4), NewFloat(0.5), NewFloat(2))
	check('/', NewInt(7), NewInt(2), NewInt(3)) // integer division truncates
	check('%', NewInt(7), NewInt(2), NewInt(1))
	check('+', NewString("a"), NewString("b"), NewString("ab"))
	check('+', NewString("n="), NewInt(3), NewString("n=3"))
	if _, err := Arith('/', NewInt(1), NewInt(0)); err == nil {
		t.Error("division by zero should error")
	}
	if _, err := Arith('-', NewString("a"), NewString("b")); err == nil {
		t.Error("string subtraction should error")
	}
	got, err := Arith('%', NewFloat(7.5), NewFloat(2))
	if err != nil || math.Abs(got.Float()-1.5) > 1e-9 {
		t.Errorf("float mod: %v %v", got, err)
	}
}

func TestSQLLiteralRoundTrip(t *testing.T) {
	if got := NewString("it's").SQLLiteral(); got != "'it''s'" {
		t.Errorf("quote escaping: %q", got)
	}
	if got := NewInt(-5).SQLLiteral(); got != "-5" {
		t.Errorf("int literal: %q", got)
	}
}

func TestLike(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%llo", true},
		{"hello", "h_llo", true},
		{"hello", "h_l_o", true},
		{"hello", "x%", false},
		{"hello", "%x%", false},
		{"", "%", true},
		{"abc", "", false},
		{"HELLO", "hello", true}, // case-insensitive like the server default
		{"abcdbcd", "%bcd", true},
	}
	for _, c := range cases {
		if got := Like(c.s, c.p); got != c.want {
			t.Errorf("Like(%q, %q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}

func TestCompareProperties(t *testing.T) {
	// Antisymmetry of numeric comparison.
	f := func(a, b int64) bool {
		x, okx := NewInt(a).Compare(NewInt(b))
		y, oky := NewInt(b).Compare(NewInt(a))
		return okx && oky && x == -y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// String round-trip: int -> string literal -> coerce back.
	g := func(a int64) bool {
		n, ok := NewString(NewInt(a).AsString()).AsInt()
		return ok && n == a
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestRowAndSchema(t *testing.T) {
	s := NewSchema(
		Column{Name: "symbol", Type: VarChar(10)},
		Column{Name: "price", Type: Float},
	)
	if s.Index("SYMBOL") != 0 || s.Index("price") != 1 || s.Index("nope") != -1 {
		t.Error("Index lookup failed")
	}
	if err := s.AddColumn(Column{Name: "vNo", Type: Int, Nullable: true}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddColumn(Column{Name: "VNO", Type: Int}); err == nil {
		t.Error("duplicate column accepted")
	}
	clone := s.Clone()
	clone.Columns[0].Name = "changed"
	if s.Columns[0].Name != "symbol" {
		t.Error("Clone aliases the original")
	}
	r := Row{NewString("IBM"), NewFloat(101.5), NewInt(1)}
	if !r.Equal(r.Clone()) {
		t.Error("row clone not equal")
	}
	if r.Equal(Row{NewString("IBM")}) {
		t.Error("rows of different length equal")
	}
	if s.String() == "" || r.String() == "" {
		t.Error("diagnostics empty")
	}
}

func TestResultSetFormat(t *testing.T) {
	rs := &ResultSet{
		Schema: NewSchema(Column{Name: "symbol", Type: VarChar(10)}, Column{Name: "price", Type: Float}),
		Rows:   []Row{{NewString("IBM"), NewFloat(100)}, {NewString("T"), NewFloat(22.5)}},
	}
	out := rs.Format()
	if out == "" {
		t.Fatal("empty format")
	}
	for _, want := range []string{"symbol", "price", "IBM", "22.5", "---"} {
		if !contains(out, want) {
			t.Errorf("Format() missing %q in:\n%s", want, out)
		}
	}
	var empty *ResultSet
	if empty.Format() != "" {
		t.Error("nil result set should format empty")
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
