package tds

import (
	"fmt"
	"io"

	"github.com/activedb/ecaagent/internal/sqltypes"
)

// ServerError is an error reported by the remote side inside the result
// stream (as opposed to a transport failure).
type ServerError struct{ Msg string }

func (e *ServerError) Error() string { return e.Msg }

// WriteResults streams a slice of materialized result sets as protocol
// tokens, appending an ERROR token if execErr is non-nil, and terminates
// the response with DONEFINAL. The token order per result set is
// ROWFMT, ROW*, INFO*, DONE — the order a real server emits.
func WriteResults(w io.Writer, results []*sqltypes.ResultSet, execErr error) error {
	for _, rs := range results {
		if rs == nil {
			continue
		}
		if rs.Schema != nil {
			if err := WritePacket(w, MarshalRowFmt(rs.Schema)); err != nil {
				return err
			}
			for _, row := range rs.Rows {
				if err := WritePacket(w, MarshalRow(row)); err != nil {
					return err
				}
			}
		}
		for _, msg := range rs.Messages {
			if err := WritePacket(w, MarshalInfo(msg)); err != nil {
				return err
			}
		}
		if err := WritePacket(w, MarshalDone(rs.RowsAffected, false)); err != nil {
			return err
		}
	}
	if execErr != nil {
		if err := WritePacket(w, MarshalError(execErr.Error())); err != nil {
			return err
		}
	}
	return WritePacket(w, MarshalDone(0, true))
}

// ReadResponse consumes tokens until DONEFINAL, reassembling materialized
// result sets. A remote ERROR token is returned as *ServerError alongside
// any results that preceded it; transport failures are returned as-is.
func ReadResponse(r io.Reader) ([]*sqltypes.ResultSet, error) {
	var (
		results []*sqltypes.ResultSet
		cur     *sqltypes.ResultSet
		srvErr  error
	)
	ensure := func() *sqltypes.ResultSet {
		if cur == nil {
			cur = &sqltypes.ResultSet{}
		}
		return cur
	}
	for {
		p, err := ReadPacket(r)
		if err != nil {
			return results, err
		}
		switch p.Type {
		case PktRowFmt:
			schema, err := UnmarshalRowFmt(p)
			if err != nil {
				return results, err
			}
			ensure().Schema = schema
		case PktRow:
			row, err := UnmarshalRow(p)
			if err != nil {
				return results, err
			}
			ensure().Rows = append(ensure().Rows, row)
		case PktInfo:
			msg, err := UnmarshalText(p)
			if err != nil {
				return results, err
			}
			ensure().Messages = append(ensure().Messages, msg)
		case PktError:
			msg, err := UnmarshalText(p)
			if err != nil {
				return results, err
			}
			srvErr = &ServerError{Msg: msg}
		case PktDone:
			n, err := UnmarshalDone(p)
			if err != nil {
				return results, err
			}
			ensure().RowsAffected = n
			results = append(results, cur)
			cur = nil
		case PktDoneFinal:
			if cur != nil {
				results = append(results, cur)
			}
			return results, srvErr
		default:
			return results, fmt.Errorf("tds: unexpected token %s in response", p.Type)
		}
	}
}

// CopyResponse forwards tokens from src to dst until DONEFINAL without
// materializing them — the gateway's pass-through path.
func CopyResponse(dst io.Writer, src io.Reader) error {
	for {
		p, err := ReadPacket(src)
		if err != nil {
			return err
		}
		if err := WritePacket(dst, p); err != nil {
			return err
		}
		if p.Type == PktDoneFinal {
			return nil
		}
	}
}
