// Package tds implements the wire protocol spoken between clients, the ECA
// agent's gateway, and the SQL server — a simplified analog of the Tabular
// Data Stream used by the original Open Client / Open Server libraries.
//
// The protocol is token-oriented: a request (LOGIN or LANGUAGE) is answered
// by a stream of result tokens (ROWFMT, ROW, INFO, ERROR, DONE) terminated
// by DONEFINAL. Because both sides of the ECA agent speak the same
// protocol, the agent can interpose transparently (Figure 1 of the paper).
package tds

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"

	"github.com/activedb/ecaagent/internal/sqltypes"
)

// PacketType identifies a protocol token.
type PacketType byte

// Protocol tokens.
const (
	PktLogin     PacketType = 0x01 // client → server: user, database
	PktLoginAck  PacketType = 0x02 // server → client: ok, message
	PktLanguage  PacketType = 0x03 // client → server: SQL batch text
	PktRowFmt    PacketType = 0x81 // result schema
	PktRow       PacketType = 0xD1 // one result row
	PktInfo      PacketType = 0xAB // informational message (PRINT output)
	PktError     PacketType = 0xAA // statement error
	PktDone      PacketType = 0xFD // end of one statement's results
	PktDoneFinal PacketType = 0xFE // end of the whole response
)

// String names the token for diagnostics.
func (t PacketType) String() string {
	switch t {
	case PktLogin:
		return "LOGIN"
	case PktLoginAck:
		return "LOGINACK"
	case PktLanguage:
		return "LANGUAGE"
	case PktRowFmt:
		return "ROWFMT"
	case PktRow:
		return "ROW"
	case PktInfo:
		return "INFO"
	case PktError:
		return "ERROR"
	case PktDone:
		return "DONE"
	case PktDoneFinal:
		return "DONEFINAL"
	default:
		return fmt.Sprintf("PacketType(0x%02x)", byte(t))
	}
}

// maxPacketSize bounds a single packet, defending against corrupt streams.
const maxPacketSize = 64 << 20

// Packet is one framed protocol token.
type Packet struct {
	Type    PacketType
	Payload []byte
}

// WritePacket frames and writes one packet: type byte, 4-byte big-endian
// payload length, payload.
func WritePacket(w io.Writer, p Packet) error {
	if len(p.Payload) > maxPacketSize {
		return fmt.Errorf("tds: packet too large (%d bytes)", len(p.Payload))
	}
	hdr := [5]byte{byte(p.Type)}
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(p.Payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(p.Payload)
	return err
}

// ReadPacket reads one framed packet.
func ReadPacket(r io.Reader) (Packet, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Packet{}, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > maxPacketSize {
		return Packet{}, fmt.Errorf("tds: packet length %d exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Packet{}, err
	}
	return Packet{Type: PacketType(hdr[0]), Payload: payload}, nil
}

// --- payload encoding helpers ---

type encoder struct{ buf []byte }

func (e *encoder) uvarint(n uint64) {
	var tmp [binary.MaxVarintLen64]byte
	e.buf = append(e.buf, tmp[:binary.PutUvarint(tmp[:], n)]...)
}

func (e *encoder) varint(n int64) {
	var tmp [binary.MaxVarintLen64]byte
	e.buf = append(e.buf, tmp[:binary.PutVarint(tmp[:], n)]...)
}

func (e *encoder) str(s string) {
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *encoder) byte(b byte) { e.buf = append(e.buf, b) }

type decoder struct {
	buf []byte
	pos int
}

func (d *decoder) uvarint() (uint64, error) {
	n, w := binary.Uvarint(d.buf[d.pos:])
	if w <= 0 {
		return 0, fmt.Errorf("tds: truncated uvarint")
	}
	d.pos += w
	return n, nil
}

func (d *decoder) varint() (int64, error) {
	n, w := binary.Varint(d.buf[d.pos:])
	if w <= 0 {
		return 0, fmt.Errorf("tds: truncated varint")
	}
	d.pos += w
	return n, nil
}

func (d *decoder) str() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if d.pos+int(n) > len(d.buf) {
		return "", fmt.Errorf("tds: truncated string")
	}
	s := string(d.buf[d.pos : d.pos+int(n)])
	d.pos += int(n)
	return s, nil
}

func (d *decoder) byteVal() (byte, error) {
	if d.pos >= len(d.buf) {
		return 0, fmt.Errorf("tds: truncated byte")
	}
	b := d.buf[d.pos]
	d.pos++
	return b, nil
}

// --- message constructors / parsers ---

// Login carries the client identity.
type Login struct {
	User     string
	Database string
}

// MarshalLogin encodes a LOGIN packet.
func MarshalLogin(l Login) Packet {
	var e encoder
	e.str(l.User)
	e.str(l.Database)
	return Packet{Type: PktLogin, Payload: e.buf}
}

// UnmarshalLogin decodes a LOGIN packet.
func UnmarshalLogin(p Packet) (Login, error) {
	if p.Type != PktLogin {
		return Login{}, fmt.Errorf("tds: expected LOGIN, got %s", p.Type)
	}
	d := decoder{buf: p.Payload}
	user, err := d.str()
	if err != nil {
		return Login{}, err
	}
	db, err := d.str()
	if err != nil {
		return Login{}, err
	}
	return Login{User: user, Database: db}, nil
}

// LoginAck reports login success.
type LoginAck struct {
	OK      bool
	Message string
}

// MarshalLoginAck encodes a LOGINACK packet.
func MarshalLoginAck(a LoginAck) Packet {
	var e encoder
	if a.OK {
		e.byte(1)
	} else {
		e.byte(0)
	}
	e.str(a.Message)
	return Packet{Type: PktLoginAck, Payload: e.buf}
}

// UnmarshalLoginAck decodes a LOGINACK packet.
func UnmarshalLoginAck(p Packet) (LoginAck, error) {
	if p.Type != PktLoginAck {
		return LoginAck{}, fmt.Errorf("tds: expected LOGINACK, got %s", p.Type)
	}
	d := decoder{buf: p.Payload}
	ok, err := d.byteVal()
	if err != nil {
		return LoginAck{}, err
	}
	msg, err := d.str()
	if err != nil {
		return LoginAck{}, err
	}
	return LoginAck{OK: ok == 1, Message: msg}, nil
}

// MarshalLanguage encodes a LANGUAGE (SQL batch) packet.
func MarshalLanguage(sql string) Packet {
	var e encoder
	e.str(sql)
	return Packet{Type: PktLanguage, Payload: e.buf}
}

// UnmarshalLanguage decodes a LANGUAGE packet.
func UnmarshalLanguage(p Packet) (string, error) {
	if p.Type != PktLanguage {
		return "", fmt.Errorf("tds: expected LANGUAGE, got %s", p.Type)
	}
	d := decoder{buf: p.Payload}
	return d.str()
}

// MarshalRowFmt encodes a result schema.
func MarshalRowFmt(s *sqltypes.Schema) Packet {
	var e encoder
	e.uvarint(uint64(s.Len()))
	for _, c := range s.Columns {
		e.str(c.Name)
		e.byte(byte(c.Type.Kind))
		e.uvarint(uint64(c.Type.Length))
		if c.Nullable {
			e.byte(1)
		} else {
			e.byte(0)
		}
	}
	return Packet{Type: PktRowFmt, Payload: e.buf}
}

// UnmarshalRowFmt decodes a result schema.
func UnmarshalRowFmt(p Packet) (*sqltypes.Schema, error) {
	if p.Type != PktRowFmt {
		return nil, fmt.Errorf("tds: expected ROWFMT, got %s", p.Type)
	}
	d := decoder{buf: p.Payload}
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > 4096 {
		return nil, fmt.Errorf("tds: implausible column count %d", n)
	}
	s := &sqltypes.Schema{}
	for i := uint64(0); i < n; i++ {
		name, err := d.str()
		if err != nil {
			return nil, err
		}
		kind, err := d.byteVal()
		if err != nil {
			return nil, err
		}
		length, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		nullable, err := d.byteVal()
		if err != nil {
			return nil, err
		}
		s.Columns = append(s.Columns, sqltypes.Column{
			Name:     name,
			Type:     sqltypes.Type{Kind: sqltypes.Kind(kind), Length: int(length)},
			Nullable: nullable == 1,
		})
	}
	return s, nil
}

// MarshalRow encodes one result row.
func MarshalRow(r sqltypes.Row) Packet {
	var e encoder
	e.uvarint(uint64(len(r)))
	for _, v := range r {
		e.byte(byte(v.Kind()))
		switch v.Kind() {
		case sqltypes.KindNull:
		case sqltypes.KindInt, sqltypes.KindBit:
			e.varint(v.Int())
		case sqltypes.KindFloat:
			e.uvarint(math.Float64bits(v.Float()))
		case sqltypes.KindChar, sqltypes.KindVarChar, sqltypes.KindText:
			e.str(v.Str())
		case sqltypes.KindDateTime:
			e.varint(v.Time().UnixMilli())
		}
	}
	return Packet{Type: PktRow, Payload: e.buf}
}

// UnmarshalRow decodes one result row.
func UnmarshalRow(p Packet) (sqltypes.Row, error) {
	if p.Type != PktRow {
		return nil, fmt.Errorf("tds: expected ROW, got %s", p.Type)
	}
	d := decoder{buf: p.Payload}
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > 4096 {
		return nil, fmt.Errorf("tds: implausible cell count %d", n)
	}
	row := make(sqltypes.Row, 0, n)
	for i := uint64(0); i < n; i++ {
		kind, err := d.byteVal()
		if err != nil {
			return nil, err
		}
		var v sqltypes.Value
		switch sqltypes.Kind(kind) {
		case sqltypes.KindNull:
			v = sqltypes.Null
		case sqltypes.KindInt:
			x, err := d.varint()
			if err != nil {
				return nil, err
			}
			v = sqltypes.NewInt(x)
		case sqltypes.KindBit:
			x, err := d.varint()
			if err != nil {
				return nil, err
			}
			v = sqltypes.NewBit(x != 0)
		case sqltypes.KindFloat:
			bits, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			v = sqltypes.NewFloat(math.Float64frombits(bits))
		case sqltypes.KindChar, sqltypes.KindVarChar:
			s, err := d.str()
			if err != nil {
				return nil, err
			}
			v = sqltypes.NewString(s)
		case sqltypes.KindText:
			s, err := d.str()
			if err != nil {
				return nil, err
			}
			v = sqltypes.NewText(s)
		case sqltypes.KindDateTime:
			ms, err := d.varint()
			if err != nil {
				return nil, err
			}
			v = sqltypes.NewDateTime(time.UnixMilli(ms).UTC())
		default:
			return nil, fmt.Errorf("tds: unknown value kind %d", kind)
		}
		row = append(row, v)
	}
	return row, nil
}

// MarshalInfo encodes an informational message.
func MarshalInfo(msg string) Packet {
	var e encoder
	e.str(msg)
	return Packet{Type: PktInfo, Payload: e.buf}
}

// MarshalError encodes a statement error.
func MarshalError(msg string) Packet {
	var e encoder
	e.str(msg)
	return Packet{Type: PktError, Payload: e.buf}
}

// UnmarshalText decodes INFO and ERROR payloads.
func UnmarshalText(p Packet) (string, error) {
	if p.Type != PktInfo && p.Type != PktError {
		return "", fmt.Errorf("tds: expected INFO/ERROR, got %s", p.Type)
	}
	d := decoder{buf: p.Payload}
	return d.str()
}

// MarshalDone encodes a statement-complete token.
func MarshalDone(rowsAffected int, final bool) Packet {
	var e encoder
	e.varint(int64(rowsAffected))
	t := PktDone
	if final {
		t = PktDoneFinal
	}
	return Packet{Type: t, Payload: e.buf}
}

// UnmarshalDone decodes DONE and DONEFINAL payloads.
func UnmarshalDone(p Packet) (rowsAffected int, err error) {
	if p.Type != PktDone && p.Type != PktDoneFinal {
		return 0, fmt.Errorf("tds: expected DONE, got %s", p.Type)
	}
	d := decoder{buf: p.Payload}
	n, err := d.varint()
	return int(n), err
}
