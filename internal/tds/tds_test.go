package tds

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"github.com/activedb/ecaagent/internal/sqltypes"
)

func TestPacketFraming(t *testing.T) {
	var buf bytes.Buffer
	in := Packet{Type: PktLanguage, Payload: []byte("select 1")}
	if err := WritePacket(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadPacket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Type != in.Type || !bytes.Equal(out.Payload, in.Payload) {
		t.Errorf("round trip: %+v", out)
	}
}

func TestPacketTruncation(t *testing.T) {
	var buf bytes.Buffer
	_ = WritePacket(&buf, MarshalLanguage("select 1"))
	data := buf.Bytes()
	if _, err := ReadPacket(bytes.NewReader(data[:3])); err == nil {
		t.Error("truncated header accepted")
	}
	if _, err := ReadPacket(bytes.NewReader(data[:len(data)-2])); err == nil {
		t.Error("truncated payload accepted")
	}
	// Oversized declared length rejected without allocating.
	bad := []byte{byte(PktLanguage), 0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := ReadPacket(bytes.NewReader(bad)); err == nil {
		t.Error("oversized packet accepted")
	}
}

func TestLoginRoundTrip(t *testing.T) {
	p := MarshalLogin(Login{User: "sharma", Database: "sentineldb"})
	l, err := UnmarshalLogin(p)
	if err != nil || l.User != "sharma" || l.Database != "sentineldb" {
		t.Errorf("login: %+v %v", l, err)
	}
	if _, err := UnmarshalLogin(MarshalLanguage("x")); err == nil {
		t.Error("wrong packet type accepted")
	}
}

func TestLoginAckRoundTrip(t *testing.T) {
	for _, ok := range []bool{true, false} {
		a, err := UnmarshalLoginAck(MarshalLoginAck(LoginAck{OK: ok, Message: "m"}))
		if err != nil || a.OK != ok || a.Message != "m" {
			t.Errorf("ack: %+v %v", a, err)
		}
	}
}

func TestLanguageRoundTrip(t *testing.T) {
	sql := "create trigger t on s for insert as\nprint 'x'"
	got, err := UnmarshalLanguage(MarshalLanguage(sql))
	if err != nil || got != sql {
		t.Errorf("language: %q %v", got, err)
	}
}

func testSchema() *sqltypes.Schema {
	return sqltypes.NewSchema(
		sqltypes.Column{Name: "a", Type: sqltypes.Int, Nullable: true},
		sqltypes.Column{Name: "b", Type: sqltypes.VarChar(30)},
		sqltypes.Column{Name: "c", Type: sqltypes.DateTime, Nullable: true},
		sqltypes.Column{Name: "d", Type: sqltypes.Float, Nullable: true},
		sqltypes.Column{Name: "e", Type: sqltypes.Bit, Nullable: true},
		sqltypes.Column{Name: "f", Type: sqltypes.Text, Nullable: true},
	)
}

func TestRowFmtRoundTrip(t *testing.T) {
	s := testSchema()
	got, err := UnmarshalRowFmt(MarshalRowFmt(s))
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != s.String() {
		t.Errorf("schema: %s vs %s", got, s)
	}
}

func TestRowRoundTrip(t *testing.T) {
	now := time.Now().UTC().Truncate(time.Millisecond)
	row := sqltypes.Row{
		sqltypes.NewInt(-7),
		sqltypes.NewString("hi"),
		sqltypes.NewDateTime(now),
		sqltypes.NewFloat(2.5),
		sqltypes.NewBit(true),
		sqltypes.NewText("body"),
	}
	got, err := UnmarshalRow(MarshalRow(row))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(row) {
		t.Errorf("row: %v vs %v", got, row)
	}
	nulls := sqltypes.Row{sqltypes.Null, sqltypes.Null}
	got, err = UnmarshalRow(MarshalRow(nulls))
	if err != nil || !got.Equal(nulls) {
		t.Errorf("null row: %v %v", got, err)
	}
}

func TestWriteReadResults(t *testing.T) {
	var buf bytes.Buffer
	results := []*sqltypes.ResultSet{
		{
			Schema: testSchema(),
			Rows: []sqltypes.Row{
				{sqltypes.NewInt(1), sqltypes.NewString("x"), sqltypes.Null, sqltypes.Null, sqltypes.Null, sqltypes.Null},
			},
			Messages:     []string{"one"},
			RowsAffected: 1,
		},
		{Messages: []string{"print output"}},
		nil, // skipped
		{RowsAffected: 3},
	}
	if err := WriteResults(&buf, results, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadResponse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d result sets", len(got))
	}
	if got[0].Schema == nil || len(got[0].Rows) != 1 || got[0].Messages[0] != "one" || got[0].RowsAffected != 1 {
		t.Errorf("rs0: %+v", got[0])
	}
	if got[1].Messages[0] != "print output" {
		t.Errorf("rs1: %+v", got[1])
	}
	if got[2].RowsAffected != 3 {
		t.Errorf("rs2: %+v", got[2])
	}
}

func TestWriteResultsWithError(t *testing.T) {
	var buf bytes.Buffer
	results := []*sqltypes.ResultSet{{RowsAffected: 1}}
	if err := WriteResults(&buf, results, errors.New("table not found")); err != nil {
		t.Fatal(err)
	}
	got, err := ReadResponse(&buf)
	var se *ServerError
	if !errors.As(err, &se) || se.Msg != "table not found" {
		t.Fatalf("error: %v", err)
	}
	if len(got) != 1 {
		t.Errorf("partial results lost: %d", len(got))
	}
}

func TestReadResponseTransportError(t *testing.T) {
	var buf bytes.Buffer
	_ = WritePacket(&buf, MarshalInfo("hello"))
	// No DONEFINAL: reader hits EOF.
	if _, err := ReadResponse(&buf); err == nil {
		t.Error("missing DONEFINAL accepted")
	}
	// Unexpected token.
	buf.Reset()
	_ = WritePacket(&buf, MarshalLogin(Login{}))
	if _, err := ReadResponse(&buf); err == nil {
		t.Error("unexpected token accepted")
	}
}

func TestCopyResponse(t *testing.T) {
	var src, dst bytes.Buffer
	results := []*sqltypes.ResultSet{{
		Schema:   sqltypes.NewSchema(sqltypes.Column{Name: "n", Type: sqltypes.Int, Nullable: true}),
		Rows:     []sqltypes.Row{{sqltypes.NewInt(42)}},
		Messages: []string{"m"},
	}}
	if err := WriteResults(&src, results, nil); err != nil {
		t.Fatal(err)
	}
	if err := CopyResponse(&dst, &src); err != nil {
		t.Fatal(err)
	}
	got, err := ReadResponse(&dst)
	if err != nil || len(got) != 1 || got[0].Rows[0][0].Int() != 42 {
		t.Errorf("copied response: %+v %v", got, err)
	}
}

func TestPacketTypeString(t *testing.T) {
	for _, pt := range []PacketType{PktLogin, PktLoginAck, PktLanguage, PktRowFmt, PktRow, PktInfo, PktError, PktDone, PktDoneFinal, PacketType(0x55)} {
		if pt.String() == "" {
			t.Errorf("empty String for %d", pt)
		}
	}
}

func TestRowPropertyRoundTrip(t *testing.T) {
	f := func(n int64, s string, fl float64) bool {
		row := sqltypes.Row{sqltypes.NewInt(n), sqltypes.NewText(s), sqltypes.NewFloat(fl)}
		got, err := UnmarshalRow(MarshalRow(row))
		if err != nil {
			return false
		}
		// NaN != NaN under Compare; compare the wire representation.
		return fmt.Sprintf("%v", got) == fmt.Sprintf("%v", row)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalGarbage(t *testing.T) {
	garbage := Packet{Type: PktRow, Payload: []byte{0x05, 0x09}}
	if _, err := UnmarshalRow(garbage); err == nil {
		t.Error("garbage row accepted")
	}
	garbage = Packet{Type: PktRowFmt, Payload: []byte{0xFF}}
	if _, err := UnmarshalRowFmt(garbage); err == nil {
		t.Error("garbage rowfmt accepted")
	}
	if _, err := UnmarshalDone(Packet{Type: PktDone, Payload: nil}); err == nil {
		t.Error("empty done accepted")
	}
}
