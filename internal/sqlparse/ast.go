// Package sqlparse parses the T-SQL-ish dialect shared by the SQL server
// substrate and the ECA agent into an AST, and can render the AST back to
// SQL text.
//
// The dialect covers exactly what the paper's client examples and the ECA
// agent's generated code require (Figures 9-14): DDL, DML with joins and
// aggregates, triggers with inserted/deleted pseudo-tables, stored
// procedures, EXECUTE, PRINT, and batches separated by GO.
package sqlparse

import (
	"strings"

	"github.com/activedb/ecaagent/internal/sqltypes"
)

// ObjectName is a possibly-qualified object name: name, owner.name, or
// db.owner.name. Empty leading parts are preserved as "" (e.g. the Sybase
// spelling db..table).
type ObjectName struct {
	Parts []string
}

// Name returns the final (object) component.
func (o ObjectName) Name() string {
	if len(o.Parts) == 0 {
		return ""
	}
	return o.Parts[len(o.Parts)-1]
}

// Database returns the database component if fully qualified, else "".
func (o ObjectName) Database() string {
	if len(o.Parts) == 3 {
		return o.Parts[0]
	}
	return ""
}

// Owner returns the owner component if present, else "".
func (o ObjectName) Owner() string {
	if len(o.Parts) >= 2 {
		return o.Parts[len(o.Parts)-2]
	}
	return ""
}

// String renders the dotted name.
func (o ObjectName) String() string { return strings.Join(o.Parts, ".") }

// IsQualified reports whether the name has more than one component.
func (o ObjectName) IsQualified() bool { return len(o.Parts) > 1 }

// ON builds an ObjectName from parts, a convenience for tests and codegen.
func ON(parts ...string) ObjectName { return ObjectName{Parts: parts} }

// Statement is any parsed SQL statement.
type Statement interface {
	stmtNode()
	// SQL renders the statement back to executable text.
	SQL() string
}

// ColumnDef is one column in CREATE TABLE / ALTER TABLE ADD.
type ColumnDef struct {
	Name     string
	Type     sqltypes.Type
	Nullable bool
	// NullSpecified records whether the user wrote an explicit NULL / NOT
	// NULL clause (Sybase defaults to NOT NULL when omitted).
	NullSpecified bool
}

// CreateDatabase is CREATE DATABASE name.
type CreateDatabase struct{ Name string }

// UseDatabase is USE name.
type UseDatabase struct{ Name string }

// CreateTable is CREATE TABLE name (cols...).
type CreateTable struct {
	Name    ObjectName
	Columns []ColumnDef
}

// DropTable is DROP TABLE name.
type DropTable struct{ Name ObjectName }

// AlterTableAdd is ALTER TABLE name ADD col type [null].
type AlterTableAdd struct {
	Table  ObjectName
	Column ColumnDef
}

// Insert is INSERT [INTO] table [(cols)] VALUES (...)[, (...)] or
// INSERT [INTO] table [(cols)] SELECT ...
type Insert struct {
	Table   ObjectName
	Columns []string
	Values  [][]Expr
	Select  *Select
}

// SelectItem is one projection item.
type SelectItem struct {
	// Star is true for "*" or "t.*"; StarTable holds the qualifier.
	Star      bool
	StarTable ObjectName
	Expr      Expr
	Alias     string
}

// TableRef is one entry in a FROM list.
type TableRef struct {
	Name  ObjectName
	Alias string
}

// OrderItem is one ORDER BY entry.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// Select is a SELECT statement, optionally with INTO (SELECT ... INTO t
// FROM ...), the Sybase table-creation idiom the agent's code generator
// uses for shadow tables.
type Select struct {
	Distinct bool
	Items    []SelectItem
	Into     *ObjectName
	From     []TableRef
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
}

// Assignment is one SET clause in UPDATE.
type Assignment struct {
	Column string
	Value  Expr
}

// Update is UPDATE table SET a=expr, ... [WHERE ...].
type Update struct {
	Table ObjectName
	Set   []Assignment
	Where Expr
}

// Delete is DELETE [FROM] table [WHERE ...].
type Delete struct {
	Table ObjectName
	Where Expr
}

// TriggerOp is a native trigger operation.
type TriggerOp string

// The three native trigger operations.
const (
	OpInsert TriggerOp = "insert"
	OpUpdate TriggerOp = "update"
	OpDelete TriggerOp = "delete"
)

// CreateTrigger is the *native* trigger form:
// CREATE TRIGGER name ON table FOR op AS body.
// (The agent's extended event syntax is parsed by the agent, not here.)
type CreateTrigger struct {
	Name      ObjectName
	Table     ObjectName
	Operation TriggerOp
	Body      []Statement
	// RawBody preserves the original body text for catalog storage.
	RawBody string
}

// DropTrigger is DROP TRIGGER name.
type DropTrigger struct{ Name ObjectName }

// ProcParam is one stored-procedure parameter.
type ProcParam struct {
	Name string // includes the leading '@'
	Type sqltypes.Type
}

// CreateProcedure is CREATE PROCEDURE name [params] AS body.
type CreateProcedure struct {
	Name    ObjectName
	Params  []ProcParam
	Body    []Statement
	RawBody string
}

// DropProcedure is DROP PROCEDURE name.
type DropProcedure struct{ Name ObjectName }

// Execute is EXEC[UTE] proc [arg, ...].
type Execute struct {
	Proc ObjectName
	Args []Expr
}

// Print is PRINT expr.
type Print struct{ Value Expr }

// BeginTran, CommitTran and RollbackTran are the transaction statements.
type (
	// BeginTran is BEGIN TRAN[SACTION].
	BeginTran struct{}
	// CommitTran is COMMIT [TRAN[SACTION]].
	CommitTran struct{}
	// RollbackTran is ROLLBACK [TRAN[SACTION]].
	RollbackTran struct{}
)

// SelectExpr is a FROM-less SELECT used for expression evaluation, e.g.
// "select syb_sendmsg(...)" in the generated trigger code, or "select 1".
// It is represented as a Select with no FROM; no separate node is needed.

func (*CreateDatabase) stmtNode()  {}
func (*UseDatabase) stmtNode()     {}
func (*CreateTable) stmtNode()     {}
func (*DropTable) stmtNode()       {}
func (*AlterTableAdd) stmtNode()   {}
func (*Insert) stmtNode()          {}
func (*Select) stmtNode()          {}
func (*Update) stmtNode()          {}
func (*Delete) stmtNode()          {}
func (*CreateTrigger) stmtNode()   {}
func (*DropTrigger) stmtNode()     {}
func (*CreateProcedure) stmtNode() {}
func (*DropProcedure) stmtNode()   {}
func (*Execute) stmtNode()         {}
func (*Print) stmtNode()           {}
func (*BeginTran) stmtNode()       {}
func (*CommitTran) stmtNode()      {}
func (*RollbackTran) stmtNode()    {}

// Expr is any expression node.
type Expr interface {
	exprNode()
	// SQL renders the expression back to SQL text.
	SQL() string
}

// Literal is a constant value.
type Literal struct{ Value sqltypes.Value }

// ColumnRef is a possibly-qualified column reference. Qualifier may have
// up to three parts (db.owner.table), so a full reference has up to four.
type ColumnRef struct {
	Qualifier ObjectName // possibly empty
	Name      string
}

// BinaryOp enumerates binary operators.
type BinaryOp string

// Binary operators.
const (
	OpOr  BinaryOp = "or"
	OpAnd BinaryOp = "and"
	OpEq  BinaryOp = "="
	OpNe  BinaryOp = "<>"
	OpLt  BinaryOp = "<"
	OpLe  BinaryOp = "<="
	OpGt  BinaryOp = ">"
	OpGe  BinaryOp = ">="
	OpAdd BinaryOp = "+"
	OpSub BinaryOp = "-"
	OpMul BinaryOp = "*"
	OpDiv BinaryOp = "/"
	OpMod BinaryOp = "%"
	// OpLike is the LIKE operator.
	OpLike BinaryOp = "like"
)

// BinaryExpr applies a binary operator.
type BinaryExpr struct {
	Op   BinaryOp
	L, R Expr
}

// UnaryExpr applies NOT or unary minus.
type UnaryExpr struct {
	Op string // "not" or "-"
	E  Expr
}

// FuncCall is a function invocation; Star marks count(*).
type FuncCall struct {
	Name string
	Args []Expr
	Star bool
}

// IsNull is "expr IS [NOT] NULL".
type IsNull struct {
	E      Expr
	Negate bool
}

// InList is "expr [NOT] IN (e1, e2, ...)".
type InList struct {
	E      Expr
	List   []Expr
	Negate bool
}

func (*Literal) exprNode()    {}
func (*ColumnRef) exprNode()  {}
func (*BinaryExpr) exprNode() {}
func (*UnaryExpr) exprNode()  {}
func (*FuncCall) exprNode()   {}
func (*IsNull) exprNode()     {}
func (*InList) exprNode()     {}
