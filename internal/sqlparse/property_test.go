package sqlparse

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/activedb/ecaagent/internal/sqltypes"
)

// genExpr builds a random expression AST of bounded depth.
func genExpr(rng *rand.Rand, depth int) Expr {
	if depth <= 0 {
		switch rng.Intn(4) {
		case 0:
			return &Literal{Value: sqltypes.NewInt(int64(rng.Intn(1000)))}
		case 1:
			return &Literal{Value: sqltypes.NewFloat(float64(rng.Intn(100)) + 0.5)}
		case 2:
			return &Literal{Value: sqltypes.NewString(randIdent(rng))}
		default:
			return &ColumnRef{Name: randIdent(rng)}
		}
	}
	switch rng.Intn(7) {
	case 0:
		ops := []BinaryOp{OpAdd, OpSub, OpMul, OpDiv, OpMod}
		return &BinaryExpr{Op: ops[rng.Intn(len(ops))],
			L: genExpr(rng, depth-1), R: genExpr(rng, depth-1)}
	case 1:
		ops := []BinaryOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpLike}
		return &BinaryExpr{Op: ops[rng.Intn(len(ops))],
			L: genExpr(rng, depth-1), R: genExpr(rng, depth-1)}
	case 2:
		ops := []BinaryOp{OpAnd, OpOr}
		return &BinaryExpr{Op: ops[rng.Intn(len(ops))],
			L: genExpr(rng, depth-1), R: genExpr(rng, depth-1)}
	case 3:
		op := "not"
		if rng.Intn(2) == 0 {
			op = "-"
		}
		return &UnaryExpr{Op: op, E: genExpr(rng, depth-1)}
	case 4:
		n := rng.Intn(3)
		args := make([]Expr, n)
		for i := range args {
			args[i] = genExpr(rng, depth-1)
		}
		return &FuncCall{Name: "f" + randIdent(rng), Args: args}
	case 5:
		return &IsNull{E: genExpr(rng, depth-1), Negate: rng.Intn(2) == 0}
	default:
		n := 1 + rng.Intn(3)
		list := make([]Expr, n)
		for i := range list {
			list[i] = genExpr(rng, depth-1)
		}
		return &InList{E: genExpr(rng, depth-1), List: list, Negate: rng.Intn(2) == 0}
	}
}

func randIdent(rng *rand.Rand) string {
	letters := "abcdefgh"
	for {
		n := 1 + rng.Intn(5)
		out := make([]byte, n)
		for i := range out {
			out[i] = letters[rng.Intn(len(letters))]
		}
		// Reserved words ("add" is spellable from this alphabet) are not
		// valid identifiers; the parser rejects them in expressions.
		if !isReserved(string(out)) {
			return string(out)
		}
	}
}

// TestPropertyExprRoundTrip: for random ASTs, one parse normalizes the
// text (e.g. folding -75.5 into a literal) and a second parse is a
// fixpoint: parse(parse(sql).SQL()).SQL() == parse(sql).SQL().
func TestPropertyExprRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := genExpr(rng, 3)
		sql1 := e.SQL()
		parsed, err := ParseExpr(sql1)
		if err != nil {
			t.Logf("seed %d: %q: %v", seed, sql1, err)
			return false
		}
		sql2 := parsed.SQL()
		reparsed, err := ParseExpr(sql2)
		if err != nil {
			t.Logf("seed %d: normalized %q no longer parses: %v", seed, sql2, err)
			return false
		}
		if sql3 := reparsed.SQL(); sql3 != sql2 {
			t.Logf("seed %d: not a fixpoint:\n  sql2 %q\n  sql3 %q", seed, sql2, sql3)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertyStatementRoundTrip: random simple statements round-trip.
func TestPropertyStatementRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		stmts := []Statement{
			&Insert{Table: ON(randIdent(rng)), Values: [][]Expr{{genExpr(rng, 1), genExpr(rng, 1)}}},
			&Update{Table: ON(randIdent(rng)),
				Set:   []Assignment{{Column: randIdent(rng), Value: genExpr(rng, 2)}},
				Where: genExpr(rng, 2)},
			&Delete{Table: ON(randIdent(rng)), Where: genExpr(rng, 2)},
			&Print{Value: genExpr(rng, 2)},
		}
		st := stmts[rng.Intn(len(stmts))]
		sql1 := st.SQL()
		parsed, err := ParseBatch(sql1)
		if err != nil || len(parsed) != 1 {
			t.Logf("seed %d: %q: %v (%d stmts)", seed, sql1, err, len(parsed))
			return false
		}
		sql2 := parsed[0].SQL()
		reparsed, err := ParseBatch(sql2)
		if err != nil || len(reparsed) != 1 {
			t.Logf("seed %d: normalized %q no longer parses: %v", seed, sql2, err)
			return false
		}
		if sql3 := reparsed[0].SQL(); sql3 != sql2 {
			t.Logf("seed %d: not a fixpoint:\n  sql2 %q\n  sql3 %q", seed, sql2, sql3)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
