package sqlparse

import (
	"strings"
	"testing"

	"github.com/activedb/ecaagent/internal/sqltypes"
)

func mustParseOne(t *testing.T, src string) Statement {
	t.Helper()
	stmts, err := ParseBatch(src)
	if err != nil {
		t.Fatalf("ParseBatch(%q): %v", src, err)
	}
	if len(stmts) != 1 {
		t.Fatalf("ParseBatch(%q) returned %d statements", src, len(stmts))
	}
	return stmts[0]
}

func TestParseCreateTable(t *testing.T) {
	st := mustParseOne(t, "create table stock (symbol varchar(10) not null, price float null, vol int)")
	ct, ok := st.(*CreateTable)
	if !ok {
		t.Fatalf("got %T", st)
	}
	if ct.Name.Name() != "stock" || len(ct.Columns) != 3 {
		t.Fatalf("bad parse: %+v", ct)
	}
	if ct.Columns[0].Type != sqltypes.VarChar(10) || ct.Columns[0].Nullable {
		t.Errorf("col0: %+v", ct.Columns[0])
	}
	if !ct.Columns[1].Nullable || !ct.Columns[1].NullSpecified {
		t.Errorf("col1: %+v", ct.Columns[1])
	}
	if ct.Columns[2].NullSpecified {
		t.Errorf("col2 should have no explicit null spec: %+v", ct.Columns[2])
	}
}

func TestParseQualifiedNames(t *testing.T) {
	st := mustParseOne(t, "drop table sentineldb.sharma.stock_inserted")
	dt := st.(*DropTable)
	if dt.Name.Database() != "sentineldb" || dt.Name.Owner() != "sharma" || dt.Name.Name() != "stock_inserted" {
		t.Errorf("bad name: %+v", dt.Name)
	}
	st = mustParseOne(t, "drop table mydb..t")
	dt = st.(*DropTable)
	if dt.Name.Database() != "mydb" || dt.Name.Owner() != "" || dt.Name.Name() != "t" {
		t.Errorf("db..t parse: %+v", dt.Name)
	}
}

func TestParseInsertValues(t *testing.T) {
	st := mustParseOne(t, "insert into stock (symbol, price) values ('IBM', 100.5), ('T', 20)")
	ins := st.(*Insert)
	if len(ins.Values) != 2 || len(ins.Columns) != 2 {
		t.Fatalf("bad insert: %+v", ins)
	}
	lit := ins.Values[0][0].(*Literal)
	if lit.Value.Str() != "IBM" {
		t.Errorf("first value: %v", lit.Value)
	}
}

func TestParseInsertSelect(t *testing.T) {
	st := mustParseOne(t, "insert stock_inserted select * from inserted")
	ins := st.(*Insert)
	if ins.Select == nil || !ins.Select.Items[0].Star {
		t.Fatalf("bad insert-select: %+v", ins)
	}
}

func TestParseSelectFull(t *testing.T) {
	st := mustParseOne(t, `select distinct s.symbol, price * 2 as dbl into result
		from stock s, trades t
		where s.symbol = t.symbol and price > 10 or vol is not null
		group by s.symbol order by price desc, vol`)
	sel := st.(*Select)
	if !sel.Distinct || sel.Into == nil || sel.Into.Name() != "result" {
		t.Fatalf("distinct/into: %+v", sel)
	}
	if len(sel.From) != 2 || sel.From[0].Alias != "s" || sel.From[1].Alias != "t" {
		t.Errorf("from: %+v", sel.From)
	}
	if len(sel.Items) != 2 || sel.Items[1].Alias != "dbl" {
		t.Errorf("items: %+v", sel.Items)
	}
	if len(sel.GroupBy) != 1 || len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Errorf("group/order: %+v", sel)
	}
	if sel.Where == nil {
		t.Error("missing where")
	}
}

func TestParseSelectStarQualified(t *testing.T) {
	st := mustParseOne(t, "select s.*, t.symbol from stock s, trades t")
	sel := st.(*Select)
	if !sel.Items[0].Star || sel.Items[0].StarTable.Name() != "s" {
		t.Errorf("qualified star: %+v", sel.Items[0])
	}
	if sel.Items[1].Star {
		t.Errorf("second item should not be star")
	}
}

func TestParseUpdateDelete(t *testing.T) {
	st := mustParseOne(t, "update SysPrimitiveEvent set vNo = vNo + 1 where eventName = 'x'")
	up := st.(*Update)
	if len(up.Set) != 1 || up.Set[0].Column != "vNo" || up.Where == nil {
		t.Fatalf("update: %+v", up)
	}
	st = mustParseOne(t, "delete from stock where price < 0")
	del := st.(*Delete)
	if del.Table.Name() != "stock" || del.Where == nil {
		t.Fatalf("delete: %+v", del)
	}
	st = mustParseOne(t, "delete Version")
	del = st.(*Delete)
	if del.Table.Name() != "Version" || del.Where != nil {
		t.Fatalf("bare delete: %+v", del)
	}
}

func TestParseTriggerWithMultiStatementBody(t *testing.T) {
	src := `create trigger t_addStk on stock for insert as
		insert stock_inserted select * from inserted
		select syb_sendmsg('127.0.0.1', 10006, 'msg')
		update SysPrimitiveEvent set vNo = vNo + 1 where eventName = 'addStk'
		execute t_addStk__Proc`
	st := mustParseOne(t, src)
	tr := st.(*CreateTrigger)
	if tr.Operation != OpInsert || tr.Table.Name() != "stock" {
		t.Fatalf("trigger header: %+v", tr)
	}
	if len(tr.Body) != 4 {
		t.Fatalf("body has %d statements, want 4", len(tr.Body))
	}
	if _, ok := tr.Body[3].(*Execute); !ok {
		t.Errorf("last body stmt: %T", tr.Body[3])
	}
	if !strings.Contains(tr.RawBody, "syb_sendmsg") {
		t.Errorf("RawBody lost content: %q", tr.RawBody)
	}
}

func TestParseProcedure(t *testing.T) {
	src := `create procedure p_check @sym varchar(10), @min float as
		select * from stock where symbol = @sym and price > @min
		print 'done'`
	st := mustParseOne(t, src)
	pr := st.(*CreateProcedure)
	if len(pr.Params) != 2 || pr.Params[0].Name != "@sym" || pr.Params[1].Type != sqltypes.Float {
		t.Fatalf("params: %+v", pr.Params)
	}
	if len(pr.Body) != 2 {
		t.Fatalf("body: %d statements", len(pr.Body))
	}
}

func TestParseExecute(t *testing.T) {
	st := mustParseOne(t, "exec sentineldb.sharma.t_addStk__Proc")
	ex := st.(*Execute)
	if ex.Proc.String() != "sentineldb.sharma.t_addStk__Proc" || len(ex.Args) != 0 {
		t.Fatalf("exec: %+v", ex)
	}
	st = mustParseOne(t, "execute p_check 'IBM', 10.5")
	ex = st.(*Execute)
	if len(ex.Args) != 2 {
		t.Fatalf("exec args: %+v", ex.Args)
	}
}

func TestParseMisc(t *testing.T) {
	if _, ok := mustParseOne(t, "use sentineldb").(*UseDatabase); !ok {
		t.Error("use")
	}
	if _, ok := mustParseOne(t, "create database d").(*CreateDatabase); !ok {
		t.Error("create database")
	}
	if _, ok := mustParseOne(t, "begin tran").(*BeginTran); !ok {
		t.Error("begin tran")
	}
	if _, ok := mustParseOne(t, "commit").(*CommitTran); !ok {
		t.Error("commit")
	}
	if _, ok := mustParseOne(t, "rollback transaction").(*RollbackTran); !ok {
		t.Error("rollback")
	}
	pr := mustParseOne(t, "print 'hello ' + 'world'").(*Print)
	if pr.Value == nil {
		t.Error("print expr")
	}
	at := mustParseOne(t, "alter table stock_inserted add vNo int null").(*AlterTableAdd)
	if at.Column.Name != "vNo" || !at.Column.Nullable {
		t.Errorf("alter: %+v", at.Column)
	}
}

func TestParseExprForms(t *testing.T) {
	cases := []string{
		"1 + 2 * 3",
		"-x",
		"not a = b",
		"a like 'x%'",
		"a not like 'x%'",
		"b in (1, 2, 3)",
		"b not in ('a')",
		"c is null",
		"c is not null",
		"getdate()",
		"count(*)",
		"sum(price * vol)",
		"(a or b) and c",
		"sysContext.vNo = sentineldb.sharma.stock_inserted.vNo",
		"@param + 1",
	}
	for _, src := range cases {
		if _, err := ParseExpr(src); err != nil {
			t.Errorf("ParseExpr(%q): %v", src, err)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	e, err := ParseExpr("1 + 2 * 3 = 7 and not 1 = 2")
	if err != nil {
		t.Fatal(err)
	}
	want := "(((1 + (2 * 3)) = 7) and (not (1 = 2)))"
	if got := e.SQL(); got != want {
		t.Errorf("got %s want %s", got, want)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"create table t",
		"create table t (a unknowntype)",
		"create trigger t on x for truncate as print 'x'",
		"create trigger t on x for insert as",
		"insert into t",
		"select from",
		"update t where a = 1",
		"frobnicate the database",
		"drop index i",
		"create view v as select 1",
		"begin",
		"exec",
		"a.b.c.d.e",
		"select * from t where",
		"select 1 +",
		"print 'a' 'b' extra",
	}
	for _, src := range bad {
		if stmts, err := ParseBatch(src); err == nil {
			t.Errorf("ParseBatch(%q) succeeded: %+v", src, stmts)
		}
	}
}

func TestSplitBatches(t *testing.T) {
	src := "select 1\ngo\nselect 2\nGO\n\ngo\nselect 3"
	batches := SplitBatches(src)
	if len(batches) != 3 {
		t.Fatalf("got %d batches: %q", len(batches), batches)
	}
	for i, want := range []string{"select 1", "select 2", "select 3"} {
		if strings.TrimSpace(batches[i]) != want {
			t.Errorf("batch %d = %q", i, batches[i])
		}
	}
}

func TestParseScript(t *testing.T) {
	src := `create table t (a int)
go
insert t values (1)
insert t values (2)
go
select * from t`
	stmts, err := ParseScript(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 4 {
		t.Fatalf("got %d statements", len(stmts))
	}
}

// TestRoundTrip checks parse → SQL() → parse → SQL() is a fixpoint for a
// corpus covering every statement form.
func TestRoundTrip(t *testing.T) {
	corpus := []string{
		"create database sentineldb",
		"use sentineldb",
		"create table stock (symbol varchar(10) not null, price float null, ts datetime)",
		"drop table stock",
		"alter table stock add vNo int null",
		"insert stock (symbol, price) values ('IBM', 100.5)",
		"insert stock select * from old_stock where price > 1",
		"select distinct symbol, price as p from stock s where price >= 10 group by symbol having count(*) > 1 order by price desc",
		"select * into backup_stock from stock",
		"select s.* from stock s",
		"update stock set price = price * 1.1, vol = 0 where symbol like 'I%'",
		"delete stock where price is null",
		"create trigger tg on stock for update as\nprint 'updated'\nselect count(*) from stock",
		"drop trigger tg",
		"create procedure p @a int as\nselect @a + 1",
		"drop procedure p",
		"execute p 5",
		"print 'hello'",
		"begin transaction",
		"commit transaction",
		"rollback transaction",
		"select getdate(), count(*), syb_sendmsg('127.0.0.1', 10006, 'x')",
		"select * from t where a in (1, 2) and b not in (3) and c is not null and not d = 1",
	}
	for _, src := range corpus {
		st1, err := ParseBatch(src)
		if err != nil {
			t.Errorf("parse %q: %v", src, err)
			continue
		}
		sql1 := make([]string, len(st1))
		for i, s := range st1 {
			sql1[i] = s.SQL()
		}
		st2, err := ParseBatch(strings.Join(sql1, "\n"))
		if err != nil {
			t.Errorf("re-parse of %q → %q: %v", src, sql1, err)
			continue
		}
		if len(st1) != len(st2) {
			t.Errorf("statement count changed: %q", src)
			continue
		}
		for i := range st2 {
			if st2[i].SQL() != sql1[i] {
				t.Errorf("not a fixpoint:\n  src:  %s\n  sql1: %s\n  sql2: %s", src, sql1[i], st2[i].SQL())
			}
		}
	}
}

// TestParseFigure11 parses the paper's Figure 11 generated code (modulo
// the paper's own typos), the primary codegen artifact.
func TestParseFigure11(t *testing.T) {
	src := `/* create two tables */
select * into sentineldb.sharma.stock_inserted from stock where 1 = 2
alter table sentineldb.sharma.stock_inserted add vNo int null
go
create procedure sentineldb.sharma.t_addStk__Proc as
print 'trigger t_addStk on primitive event addStk occurs'
select * from stock
go
create trigger sentineldb.sharma.t_addStk
on stock
for insert
as
insert sentineldb.sharma.stock_inserted
select * from inserted, Version
select syb_sendmsg('128.227.205.215', 10006, 'sharma stock insert begin sentineldb.sharma.addStk')
update SysPrimitiveEvent set vNo = vNo + 1 where eventName = 'sentineldb.sharma.addStk'
delete Version
insert Version select vNo from SysPrimitiveEvent where eventName = 'sentineldb.sharma.addStk'
execute sentineldb.sharma.t_addStk__Proc
go`
	stmts, err := ParseScript(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 4 {
		t.Fatalf("got %d top-level statements, want 4", len(stmts))
	}
	tr, ok := stmts[3].(*CreateTrigger)
	if !ok {
		t.Fatalf("last statement is %T", stmts[3])
	}
	if len(tr.Body) != 6 {
		t.Errorf("trigger body has %d statements, want 6", len(tr.Body))
	}
}
