package sqlparse

import (
	"fmt"
	"strings"
)

// This file renders AST nodes back to SQL text. The renderer produces the
// canonical spelling the agent's code generator and the persistence layer
// store; ParseBatch(n.SQL()) round-trips for every node.

func (s *CreateDatabase) SQL() string { return "create database " + s.Name }
func (s *UseDatabase) SQL() string    { return "use " + s.Name }

func colDefSQL(c ColumnDef) string {
	out := c.Name + " " + c.Type.String()
	if c.NullSpecified {
		if c.Nullable {
			out += " null"
		} else {
			out += " not null"
		}
	}
	return out
}

func (s *CreateTable) SQL() string {
	parts := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		parts[i] = colDefSQL(c)
	}
	return fmt.Sprintf("create table %s (%s)", s.Name, strings.Join(parts, ", "))
}

func (s *DropTable) SQL() string { return "drop table " + s.Name.String() }

func (s *AlterTableAdd) SQL() string {
	return fmt.Sprintf("alter table %s add %s", s.Table, colDefSQL(s.Column))
}

func (s *Insert) SQL() string {
	var b strings.Builder
	b.WriteString("insert ")
	b.WriteString(s.Table.String())
	if len(s.Columns) > 0 {
		b.WriteString(" (" + strings.Join(s.Columns, ", ") + ")")
	}
	if s.Select != nil {
		b.WriteString(" " + s.Select.SQL())
		return b.String()
	}
	b.WriteString(" values ")
	rows := make([]string, len(s.Values))
	for i, row := range s.Values {
		cells := make([]string, len(row))
		for j, e := range row {
			cells[j] = e.SQL()
		}
		rows[i] = "(" + strings.Join(cells, ", ") + ")"
	}
	b.WriteString(strings.Join(rows, ", "))
	return b.String()
}

func (s *Select) SQL() string {
	var b strings.Builder
	b.WriteString("select ")
	if s.Distinct {
		b.WriteString("distinct ")
	}
	items := make([]string, len(s.Items))
	for i, it := range s.Items {
		switch {
		case it.Star && len(it.StarTable.Parts) > 0:
			items[i] = it.StarTable.String() + ".*"
		case it.Star:
			items[i] = "*"
		default:
			items[i] = it.Expr.SQL()
			if it.Alias != "" {
				items[i] += " as " + it.Alias
			}
		}
	}
	b.WriteString(strings.Join(items, ", "))
	if s.Into != nil {
		b.WriteString(" into " + s.Into.String())
	}
	if len(s.From) > 0 {
		b.WriteString(" from ")
		refs := make([]string, len(s.From))
		for i, r := range s.From {
			refs[i] = r.Name.String()
			if r.Alias != "" {
				refs[i] += " " + r.Alias
			}
		}
		b.WriteString(strings.Join(refs, ", "))
	}
	if s.Where != nil {
		b.WriteString(" where " + s.Where.SQL())
	}
	if len(s.GroupBy) > 0 {
		exprs := make([]string, len(s.GroupBy))
		for i, e := range s.GroupBy {
			exprs[i] = e.SQL()
		}
		b.WriteString(" group by " + strings.Join(exprs, ", "))
	}
	if s.Having != nil {
		b.WriteString(" having " + s.Having.SQL())
	}
	if len(s.OrderBy) > 0 {
		exprs := make([]string, len(s.OrderBy))
		for i, o := range s.OrderBy {
			exprs[i] = o.Expr.SQL()
			if o.Desc {
				exprs[i] += " desc"
			}
		}
		b.WriteString(" order by " + strings.Join(exprs, ", "))
	}
	return b.String()
}

func (s *Update) SQL() string {
	sets := make([]string, len(s.Set))
	for i, a := range s.Set {
		sets[i] = a.Column + " = " + a.Value.SQL()
	}
	out := fmt.Sprintf("update %s set %s", s.Table, strings.Join(sets, ", "))
	if s.Where != nil {
		out += " where " + s.Where.SQL()
	}
	return out
}

func (s *Delete) SQL() string {
	out := "delete " + s.Table.String()
	if s.Where != nil {
		out += " where " + s.Where.SQL()
	}
	return out
}

func (s *CreateTrigger) SQL() string {
	return fmt.Sprintf("create trigger %s on %s for %s as\n%s",
		s.Name, s.Table, s.Operation, bodySQL(s.Body))
}

func (s *DropTrigger) SQL() string { return "drop trigger " + s.Name.String() }

func (s *CreateProcedure) SQL() string {
	var b strings.Builder
	fmt.Fprintf(&b, "create procedure %s", s.Name)
	if len(s.Params) > 0 {
		params := make([]string, len(s.Params))
		for i, p := range s.Params {
			params[i] = p.Name + " " + p.Type.String()
		}
		b.WriteString(" " + strings.Join(params, ", "))
	}
	b.WriteString(" as\n" + bodySQL(s.Body))
	return b.String()
}

func (s *DropProcedure) SQL() string { return "drop procedure " + s.Name.String() }

func (s *Execute) SQL() string {
	out := "execute " + s.Proc.String()
	if len(s.Args) > 0 {
		args := make([]string, len(s.Args))
		for i, a := range s.Args {
			args[i] = a.SQL()
		}
		out += " " + strings.Join(args, ", ")
	}
	return out
}

func (s *Print) SQL() string { return "print " + s.Value.SQL() }

func (*BeginTran) SQL() string    { return "begin transaction" }
func (*CommitTran) SQL() string   { return "commit transaction" }
func (*RollbackTran) SQL() string { return "rollback transaction" }

func bodySQL(body []Statement) string {
	lines := make([]string, len(body))
	for i, st := range body {
		lines[i] = st.SQL()
	}
	return strings.Join(lines, "\n")
}

func (e *Literal) SQL() string { return e.Value.SQLLiteral() }

func (e *ColumnRef) SQL() string {
	if len(e.Qualifier.Parts) > 0 {
		return e.Qualifier.String() + "." + e.Name
	}
	return e.Name
}

func (e *BinaryExpr) SQL() string {
	return fmt.Sprintf("(%s %s %s)", e.L.SQL(), e.Op, e.R.SQL())
}

func (e *UnaryExpr) SQL() string {
	if e.Op == "not" {
		return "(not " + e.E.SQL() + ")"
	}
	return "(-" + e.E.SQL() + ")"
}

func (e *FuncCall) SQL() string {
	if e.Star {
		return e.Name + "(*)"
	}
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.SQL()
	}
	return e.Name + "(" + strings.Join(args, ", ") + ")"
}

func (e *IsNull) SQL() string {
	if e.Negate {
		return "(" + e.E.SQL() + " is not null)"
	}
	return "(" + e.E.SQL() + " is null)"
}

func (e *InList) SQL() string {
	items := make([]string, len(e.List))
	for i, x := range e.List {
		items[i] = x.SQL()
	}
	op := "in"
	if e.Negate {
		op = "not in"
	}
	return fmt.Sprintf("(%s %s (%s))", e.E.SQL(), op, strings.Join(items, ", "))
}
