package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/activedb/ecaagent/internal/sqllex"
	"github.com/activedb/ecaagent/internal/sqltypes"
)

// reserved lists keywords that cannot be used as bare aliases, so that the
// parser can detect statement boundaries inside unterminated batches.
var reserved = map[string]bool{
	"select": true, "insert": true, "update": true, "delete": true,
	"print": true, "execute": true, "exec": true, "create": true,
	"drop": true, "alter": true, "use": true, "begin": true,
	"commit": true, "rollback": true, "from": true, "where": true,
	"group": true, "order": true, "having": true, "into": true,
	"values": true, "set": true, "on": true, "for": true, "as": true,
	"and": true, "or": true, "not": true, "like": true, "in": true,
	"is": true, "null": true, "desc": true, "asc": true, "union": true,
	"go": true, "tran": true, "transaction": true, "by": true,
	"table": true, "trigger": true, "procedure": true, "proc": true,
	"database": true, "add": true, "distinct": true, "event": true,
	"grant": true, "waitfor": true,
}

func isReserved(word string) bool { return reserved[strings.ToLower(word)] }

// SplitBatches splits a SQL script into batches at lines consisting solely
// of the word GO (case-insensitive), the Sybase isql convention. Batches
// that are empty after splitting are dropped.
func SplitBatches(src string) []string {
	var out []string
	var cur strings.Builder
	for _, line := range strings.Split(src, "\n") {
		if strings.EqualFold(strings.TrimSpace(line), "go") {
			if strings.TrimSpace(cur.String()) != "" {
				out = append(out, cur.String())
			}
			cur.Reset()
			continue
		}
		cur.WriteString(line)
		cur.WriteByte('\n')
	}
	if strings.TrimSpace(cur.String()) != "" {
		out = append(out, cur.String())
	}
	return out
}

// Parser parses one batch of SQL text.
type Parser struct {
	src  string
	toks []sqllex.Token
	pos  int
}

// NewParser tokenizes src and returns a parser over it.
func NewParser(src string) (*Parser, error) {
	toks, err := sqllex.Tokenize(src)
	if err != nil {
		return nil, err
	}
	return &Parser{src: src, toks: toks}, nil
}

// ParseBatch parses every statement in one batch (no GO separators).
func ParseBatch(src string) ([]Statement, error) {
	p, err := NewParser(src)
	if err != nil {
		return nil, err
	}
	return p.Statements()
}

// ParseScript splits src into batches and parses each, concatenating the
// statements in order.
func ParseScript(src string) ([]Statement, error) {
	var out []Statement
	for _, batch := range SplitBatches(src) {
		stmts, err := ParseBatch(batch)
		if err != nil {
			return nil, err
		}
		out = append(out, stmts...)
	}
	return out, nil
}

// ParseExpr parses a single expression, requiring full consumption.
func ParseExpr(src string) (Expr, error) {
	p, err := NewParser(src)
	if err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, fmt.Errorf("unexpected %q after expression", p.peek().Text)
	}
	return e, nil
}

// Statements parses statements until the end of the batch.
func (p *Parser) Statements() ([]Statement, error) {
	var out []Statement
	for {
		p.skipSemis()
		if p.atEOF() {
			return out, nil
		}
		st, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		out = append(out, st)
	}
}

func (p *Parser) atEOF() bool { return p.pos >= len(p.toks) }

func (p *Parser) peek() sqllex.Token {
	if p.atEOF() {
		return sqllex.Token{Kind: sqllex.TokEOF, Pos: len(p.src), End: len(p.src)}
	}
	return p.toks[p.pos]
}

func (p *Parser) peekAt(n int) sqllex.Token {
	if p.pos+n >= len(p.toks) {
		return sqllex.Token{Kind: sqllex.TokEOF, Pos: len(p.src), End: len(p.src)}
	}
	return p.toks[p.pos+n]
}

func (p *Parser) next() sqllex.Token {
	t := p.peek()
	if !p.atEOF() {
		p.pos++
	}
	return t
}

func (p *Parser) accept(kw string) bool {
	if p.peek().IsKeyword(kw) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) acceptOp(op string) bool {
	if p.peek().IsOp(op) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expectKeyword(kw string) error {
	if !p.accept(kw) {
		return fmt.Errorf("expected %q, got %q", kw, p.peek().Text)
	}
	return nil
}

func (p *Parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return fmt.Errorf("expected %q, got %q", op, p.peek().Text)
	}
	return nil
}

func (p *Parser) expectIdent() (string, error) {
	t := p.peek()
	if t.Kind != sqllex.TokIdent {
		return "", fmt.Errorf("expected identifier, got %q", t.Text)
	}
	p.pos++
	return t.Text, nil
}

func (p *Parser) skipSemis() {
	for p.acceptOp(";") {
	}
}

// parseObjectName parses name, owner.name, db.owner.name, and the Sybase
// short form db..name.
func (p *Parser) parseObjectName() (ObjectName, error) {
	var parts []string
	id, err := p.expectIdent()
	if err != nil {
		return ObjectName{}, err
	}
	parts = append(parts, id)
	for p.peek().IsOp(".") {
		// Lookahead: the dot must be followed by an ident or another dot
		// (db..name). A ".*" belongs to the caller.
		if p.peekAt(1).Kind != sqllex.TokIdent && !p.peekAt(1).IsOp(".") {
			break
		}
		p.pos++ // consume '.'
		if p.peek().IsOp(".") {
			parts = append(parts, "") // db..name empty owner
			continue
		}
		id, err := p.expectIdent()
		if err != nil {
			return ObjectName{}, err
		}
		parts = append(parts, id)
		if len(parts) > 4 {
			return ObjectName{}, fmt.Errorf("name %s has too many components", strings.Join(parts, "."))
		}
	}
	return ObjectName{Parts: parts}, nil
}

func (p *Parser) parseStatement() (Statement, error) {
	t := p.peek()
	if t.Kind != sqllex.TokIdent {
		return nil, fmt.Errorf("expected statement, got %q", t.Text)
	}
	switch strings.ToLower(t.Text) {
	case "create":
		return p.parseCreate()
	case "drop":
		return p.parseDrop()
	case "alter":
		return p.parseAlter()
	case "insert":
		return p.parseInsert()
	case "select":
		return p.parseSelect()
	case "update":
		return p.parseUpdate()
	case "delete":
		return p.parseDelete()
	case "exec", "execute":
		return p.parseExecute()
	case "print":
		p.pos++
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &Print{Value: e}, nil
	case "use":
		p.pos++
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &UseDatabase{Name: name}, nil
	case "begin":
		p.pos++
		if !p.accept("tran") && !p.accept("transaction") {
			return nil, fmt.Errorf("expected TRAN after BEGIN")
		}
		return &BeginTran{}, nil
	case "commit":
		p.pos++
		_ = p.accept("tran") || p.accept("transaction") || p.accept("work")
		return &CommitTran{}, nil
	case "rollback":
		p.pos++
		_ = p.accept("tran") || p.accept("transaction") || p.accept("work")
		return &RollbackTran{}, nil
	default:
		return nil, fmt.Errorf("unknown statement keyword %q", t.Text)
	}
}

func (p *Parser) parseCreate() (Statement, error) {
	p.pos++ // create
	switch {
	case p.accept("database"):
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &CreateDatabase{Name: name}, nil
	case p.accept("table"):
		return p.parseCreateTable()
	case p.accept("trigger"):
		return p.parseCreateTrigger()
	case p.accept("procedure"), p.accept("proc"):
		return p.parseCreateProcedure()
	default:
		return nil, fmt.Errorf("unsupported CREATE %q", p.peek().Text)
	}
}

func (p *Parser) parseColumnDef() (ColumnDef, error) {
	name, err := p.expectIdent()
	if err != nil {
		return ColumnDef{}, err
	}
	typeName, err := p.expectIdent()
	if err != nil {
		return ColumnDef{}, err
	}
	if p.acceptOp("(") {
		lenTok := p.next()
		if lenTok.Kind != sqllex.TokNumber {
			return ColumnDef{}, fmt.Errorf("expected type length, got %q", lenTok.Text)
		}
		typeName += "(" + lenTok.Text + ")"
		if err := p.expectOp(")"); err != nil {
			return ColumnDef{}, err
		}
	}
	typ, err := sqltypes.ParseType(typeName)
	if err != nil {
		return ColumnDef{}, err
	}
	cd := ColumnDef{Name: name, Type: typ}
	if p.accept("null") {
		cd.Nullable = true
		cd.NullSpecified = true
	} else if p.peek().IsKeyword("not") && p.peekAt(1).IsKeyword("null") {
		p.pos += 2
		cd.Nullable = false
		cd.NullSpecified = true
	}
	return cd, nil
}

func (p *Parser) parseCreateTable() (Statement, error) {
	name, err := p.parseObjectName()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	var cols []ColumnDef
	for {
		cd, err := p.parseColumnDef()
		if err != nil {
			return nil, err
		}
		cols = append(cols, cd)
		if p.acceptOp(",") {
			continue
		}
		break
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return &CreateTable{Name: name, Columns: cols}, nil
}

// parseBody parses the rest of the batch as a statement list, returning it
// together with the raw source text it was parsed from.
func (p *Parser) parseBody() ([]Statement, string, error) {
	start := len(p.src)
	if !p.atEOF() {
		start = p.peek().Pos
	}
	raw := strings.TrimSpace(p.src[start:])
	body, err := p.Statements()
	if err != nil {
		return nil, "", err
	}
	if len(body) == 0 {
		return nil, "", fmt.Errorf("empty body after AS")
	}
	return body, raw, nil
}

func (p *Parser) parseCreateTrigger() (Statement, error) {
	name, err := p.parseObjectName()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("on"); err != nil {
		return nil, err
	}
	table, err := p.parseObjectName()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("for"); err != nil {
		return nil, err
	}
	opTok := p.next()
	op := TriggerOp(strings.ToLower(opTok.Text))
	if op != OpInsert && op != OpUpdate && op != OpDelete {
		return nil, fmt.Errorf("invalid trigger operation %q", opTok.Text)
	}
	if err := p.expectKeyword("as"); err != nil {
		return nil, err
	}
	body, raw, err := p.parseBody()
	if err != nil {
		return nil, err
	}
	return &CreateTrigger{Name: name, Table: table, Operation: op, Body: body, RawBody: raw}, nil
}

func (p *Parser) parseCreateProcedure() (Statement, error) {
	name, err := p.parseObjectName()
	if err != nil {
		return nil, err
	}
	var params []ProcParam
	for p.peek().Kind == sqllex.TokVariable {
		pname := p.next().Text
		typeName, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if p.acceptOp("(") {
			lenTok := p.next()
			typeName += "(" + lenTok.Text + ")"
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
		}
		typ, err := sqltypes.ParseType(typeName)
		if err != nil {
			return nil, err
		}
		params = append(params, ProcParam{Name: pname, Type: typ})
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectKeyword("as"); err != nil {
		return nil, err
	}
	body, raw, err := p.parseBody()
	if err != nil {
		return nil, err
	}
	return &CreateProcedure{Name: name, Params: params, Body: body, RawBody: raw}, nil
}

func (p *Parser) parseDrop() (Statement, error) {
	p.pos++ // drop
	switch {
	case p.accept("table"):
		name, err := p.parseObjectName()
		if err != nil {
			return nil, err
		}
		return &DropTable{Name: name}, nil
	case p.accept("trigger"):
		name, err := p.parseObjectName()
		if err != nil {
			return nil, err
		}
		return &DropTrigger{Name: name}, nil
	case p.accept("procedure"), p.accept("proc"):
		name, err := p.parseObjectName()
		if err != nil {
			return nil, err
		}
		return &DropProcedure{Name: name}, nil
	default:
		return nil, fmt.Errorf("unsupported DROP %q", p.peek().Text)
	}
}

func (p *Parser) parseAlter() (Statement, error) {
	p.pos++ // alter
	if err := p.expectKeyword("table"); err != nil {
		return nil, err
	}
	table, err := p.parseObjectName()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("add"); err != nil {
		return nil, err
	}
	cd, err := p.parseColumnDef()
	if err != nil {
		return nil, err
	}
	return &AlterTableAdd{Table: table, Column: cd}, nil
}

func (p *Parser) parseInsert() (Statement, error) {
	p.pos++ // insert
	p.accept("into")
	table, err := p.parseObjectName()
	if err != nil {
		return nil, err
	}
	st := &Insert{Table: table}
	if p.acceptOp("(") {
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			st.Columns = append(st.Columns, col)
			if p.acceptOp(",") {
				continue
			}
			break
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	switch {
	case p.accept("values"):
		for {
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			var row []Expr
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				row = append(row, e)
				if p.acceptOp(",") {
					continue
				}
				break
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			st.Values = append(st.Values, row)
			if p.acceptOp(",") {
				continue
			}
			break
		}
		return st, nil
	case p.peek().IsKeyword("select"):
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		st.Select = sel.(*Select)
		return st, nil
	default:
		return nil, fmt.Errorf("expected VALUES or SELECT in INSERT, got %q", p.peek().Text)
	}
}

func (p *Parser) parseSelect() (Statement, error) {
	p.pos++ // select
	st := &Select{}
	st.Distinct = p.accept("distinct")
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		st.Items = append(st.Items, item)
		if p.acceptOp(",") {
			continue
		}
		break
	}
	if p.accept("into") {
		name, err := p.parseObjectName()
		if err != nil {
			return nil, err
		}
		st.Into = &name
	}
	if p.accept("from") {
		for {
			ref, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			st.From = append(st.From, ref)
			if p.acceptOp(",") {
				continue
			}
			break
		}
	}
	if p.accept("where") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	if p.peek().IsKeyword("group") {
		p.pos++
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.GroupBy = append(st.GroupBy, e)
			if p.acceptOp(",") {
				continue
			}
			break
		}
	}
	if p.accept("having") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Having = e
	}
	if p.peek().IsKeyword("order") {
		p.pos++
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.accept("desc") {
				item.Desc = true
			} else {
				p.accept("asc")
			}
			st.OrderBy = append(st.OrderBy, item)
			if p.acceptOp(",") {
				continue
			}
			break
		}
	}
	return st, nil
}

func (p *Parser) parseSelectItem() (SelectItem, error) {
	if p.acceptOp("*") {
		return SelectItem{Star: true}, nil
	}
	// Detect "qualifier.*": an ident chain whose next tokens are '.' '*'.
	if p.peek().Kind == sqllex.TokIdent {
		n := 0
		for p.peekAt(n).Kind == sqllex.TokIdent && p.peekAt(n+1).IsOp(".") {
			if p.peekAt(n + 2).IsOp("*") {
				name, err := p.parseObjectName()
				if err != nil {
					return SelectItem{}, err
				}
				p.pos += 2 // consume '.' '*'
				return SelectItem{Star: true, StarTable: name}, nil
			}
			n += 2
		}
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.accept("as") {
		alias, err := p.expectIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias
	} else if t := p.peek(); t.Kind == sqllex.TokIdent && !isReserved(t.Text) {
		item.Alias = t.Text
		p.pos++
	}
	return item, nil
}

func (p *Parser) parseTableRef() (TableRef, error) {
	name, err := p.parseObjectName()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Name: name}
	if p.accept("as") {
		alias, err := p.expectIdent()
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = alias
	} else if t := p.peek(); t.Kind == sqllex.TokIdent && !isReserved(t.Text) {
		ref.Alias = t.Text
		p.pos++
	}
	return ref, nil
}

func (p *Parser) parseUpdate() (Statement, error) {
	p.pos++ // update
	table, err := p.parseObjectName()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("set"); err != nil {
		return nil, err
	}
	st := &Update{Table: table}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Set = append(st.Set, Assignment{Column: col, Value: val})
		if p.acceptOp(",") {
			continue
		}
		break
	}
	if p.accept("where") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

func (p *Parser) parseDelete() (Statement, error) {
	p.pos++ // delete
	p.accept("from")
	table, err := p.parseObjectName()
	if err != nil {
		return nil, err
	}
	st := &Delete{Table: table}
	if p.accept("where") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

func (p *Parser) parseExecute() (Statement, error) {
	p.pos++ // exec / execute
	proc, err := p.parseObjectName()
	if err != nil {
		return nil, err
	}
	st := &Execute{Proc: proc}
	// Arguments are a comma-separated expression list terminated by a
	// statement keyword, a semicolon, or EOF.
	if !p.atEOF() && !p.startsStatement() && !p.peek().IsOp(";") {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Args = append(st.Args, e)
			if p.acceptOp(",") {
				continue
			}
			break
		}
	}
	return st, nil
}

// startsStatement reports whether the current token begins a new statement.
func (p *Parser) startsStatement() bool {
	t := p.peek()
	if t.Kind != sqllex.TokIdent {
		return false
	}
	switch strings.ToLower(t.Text) {
	case "create", "drop", "alter", "insert", "select", "update", "delete",
		"exec", "execute", "print", "use", "begin", "commit", "rollback":
		return true
	}
	return false
}

// --- expressions ---

func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept("or") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept("and") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseNot() (Expr, error) {
	if p.accept("not") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "not", E: e}, nil
	}
	return p.parseComparison()
}

var compOps = map[string]BinaryOp{
	"=": OpEq, "==": OpEq, "<>": OpNe, "!=": OpNe,
	"<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
}

func (p *Parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.Kind == sqllex.TokOp {
		if op, ok := compOps[t.Text]; ok {
			p.pos++
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: op, L: l, R: r}, nil
		}
	}
	negate := false
	if t.IsKeyword("not") && (p.peekAt(1).IsKeyword("like") || p.peekAt(1).IsKeyword("in")) {
		negate = true
		p.pos++
		t = p.peek()
	}
	switch {
	case t.IsKeyword("like"):
		p.pos++
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		var e Expr = &BinaryExpr{Op: OpLike, L: l, R: r}
		if negate {
			e = &UnaryExpr{Op: "not", E: e}
		}
		return e, nil
	case t.IsKeyword("in"):
		p.pos++
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if p.acceptOp(",") {
				continue
			}
			break
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &InList{E: l, List: list, Negate: negate}, nil
	case t.IsKeyword("is"):
		p.pos++
		neg := p.accept("not")
		if err := p.expectKeyword("null"); err != nil {
			return nil, err
		}
		return &IsNull{E: l, Negate: neg}, nil
	}
	return l, nil
}

func (p *Parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptOp("+"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: OpAdd, L: l, R: r}
		case p.acceptOp("-"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: OpSub, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *Parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptOp("*"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: OpMul, L: l, R: r}
		case p.acceptOp("/"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: OpDiv, L: l, R: r}
		case p.acceptOp("%"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: OpMod, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.acceptOp("-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if lit, ok := e.(*Literal); ok {
			// Fold negative numeric literals.
			switch lit.Value.Kind() {
			case sqltypes.KindInt:
				return &Literal{Value: sqltypes.NewInt(-lit.Value.Int())}, nil
			case sqltypes.KindFloat:
				return &Literal{Value: sqltypes.NewFloat(-lit.Value.Float())}, nil
			}
		}
		return &UnaryExpr{Op: "-", E: e}, nil
	}
	p.acceptOp("+")
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case sqllex.TokNumber:
		p.pos++
		if strings.ContainsAny(t.Text, ".eE") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, fmt.Errorf("bad number %q: %v", t.Text, err)
			}
			return &Literal{Value: sqltypes.NewFloat(f)}, nil
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q: %v", t.Text, err)
		}
		return &Literal{Value: sqltypes.NewInt(n)}, nil
	case sqllex.TokString:
		p.pos++
		return &Literal{Value: sqltypes.NewString(t.Text)}, nil
	case sqllex.TokVariable:
		p.pos++
		return &ColumnRef{Name: t.Text}, nil
	case sqllex.TokOp:
		if t.Text == "(" {
			p.pos++
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, fmt.Errorf("unexpected %q in expression", t.Text)
	case sqllex.TokIdent:
		if t.IsKeyword("null") {
			p.pos++
			return &Literal{Value: sqltypes.Null}, nil
		}
		// Function call?
		if p.peekAt(1).IsOp("(") {
			name := t.Text
			p.pos += 2
			fc := &FuncCall{Name: strings.ToLower(name)}
			if p.acceptOp("*") {
				fc.Star = true
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return fc, nil
			}
			if p.acceptOp(")") {
				return fc, nil
			}
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				fc.Args = append(fc.Args, e)
				if p.acceptOp(",") {
					continue
				}
				break
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return fc, nil
		}
		if isReserved(t.Text) {
			return nil, fmt.Errorf("unexpected keyword %q in expression", t.Text)
		}
		// Dotted column reference.
		name, err := p.parseObjectName()
		if err != nil {
			return nil, err
		}
		parts := name.Parts
		return &ColumnRef{
			Qualifier: ObjectName{Parts: parts[:len(parts)-1]},
			Name:      parts[len(parts)-1],
		}, nil
	default:
		return nil, fmt.Errorf("unexpected end of expression")
	}
}
