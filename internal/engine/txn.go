package engine

import (
	"fmt"

	"github.com/activedb/ecaagent/internal/sqltypes"
	"github.com/activedb/ecaagent/internal/storage"
)

// transaction tracks undo images for an explicit BEGIN TRAN. The first
// time a table is modified inside the transaction its full row set is
// saved; ROLLBACK restores every saved image. This gives per-session
// atomicity for DML (schema changes are not undone, matching the
// original server's behaviour for several DDL statements inside
// transactions).
type transaction struct {
	undo  map[*storage.Table][]sqltypes.Row
	order []*storage.Table
}

func (s *Session) beginTran() error {
	if s.txn != nil {
		return fmt.Errorf("transaction already in progress")
	}
	s.txn = &transaction{undo: make(map[*storage.Table][]sqltypes.Row)}
	return nil
}

// txnSaveTable records a table's pre-transaction image on first touch.
func (s *Session) txnSaveTable(t *storage.Table) {
	if s.txn == nil || t == nil {
		return
	}
	if _, ok := s.txn.undo[t]; ok {
		return
	}
	s.txn.undo[t] = t.Rows()
	s.txn.order = append(s.txn.order, t)
}

func (s *Session) commitTran() error {
	if s.txn == nil {
		return fmt.Errorf("no transaction in progress")
	}
	s.txn = nil
	return nil
}

func (s *Session) rollbackTran() error {
	if s.txn == nil {
		return fmt.Errorf("no transaction in progress")
	}
	txn := s.txn
	s.txn = nil
	for i := len(txn.order) - 1; i >= 0; i-- {
		t := txn.order[i]
		if err := t.ReplaceAll(txn.undo[t]); err != nil {
			return fmt.Errorf("rollback failed: %v", err)
		}
	}
	return nil
}

// InTransaction reports whether the session has an open transaction.
func (s *Session) InTransaction() bool { return s.txn != nil }
