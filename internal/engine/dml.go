package engine

import (
	"fmt"

	"github.com/activedb/ecaagent/internal/sqlparse"
	"github.com/activedb/ecaagent/internal/sqltypes"
	"github.com/activedb/ecaagent/internal/storage"
)

func (s *Session) execInsert(st *sqlparse.Insert) (*sqltypes.ResultSet, error) {
	tbl, err := s.resolveTable(st.Table)
	if err != nil {
		return nil, err
	}
	schema := tbl.Schema()

	var rows []sqltypes.Row
	if st.Select != nil {
		rs, err := s.runSelect(st.Select)
		if err != nil {
			return nil, err
		}
		for _, r := range rs.Rows {
			full, err := arrangeRow(schema, st.Columns, r)
			if err != nil {
				return nil, err
			}
			rows = append(rows, full)
		}
	} else {
		for _, exprRow := range st.Values {
			vals := make(sqltypes.Row, len(exprRow))
			for i, e := range exprRow {
				v, err := s.eval(e, nil)
				if err != nil {
					return nil, err
				}
				vals[i] = v
			}
			full, err := arrangeRow(schema, st.Columns, vals)
			if err != nil {
				return nil, err
			}
			rows = append(rows, full)
		}
	}

	s.txnSaveTable(tbl)
	if err := tbl.InsertMany(rows); err != nil {
		return nil, err
	}
	if err := s.fireTrigger(st.Table, sqlparse.OpInsert, rows, nil, schema); err != nil {
		return nil, err
	}
	return &sqltypes.ResultSet{RowsAffected: len(rows)}, nil
}

// arrangeRow positions the supplied values according to the optional
// column list, filling unmentioned columns with NULL.
func arrangeRow(schema *sqltypes.Schema, cols []string, vals sqltypes.Row) (sqltypes.Row, error) {
	if len(cols) == 0 {
		if len(vals) != schema.Len() {
			return nil, fmt.Errorf("insert supplies %d values for %d columns", len(vals), schema.Len())
		}
		return vals, nil
	}
	if len(vals) != len(cols) {
		return nil, fmt.Errorf("insert supplies %d values for %d named columns", len(vals), len(cols))
	}
	full := make(sqltypes.Row, schema.Len())
	for i := range full {
		full[i] = sqltypes.Null
	}
	for i, c := range cols {
		ci := schema.Index(c)
		if ci < 0 {
			return nil, fmt.Errorf("unknown column %q in insert list", c)
		}
		full[ci] = vals[i]
	}
	return full, nil
}

func (s *Session) execUpdate(st *sqlparse.Update) (*sqltypes.ResultSet, error) {
	tbl, err := s.resolveTable(st.Table)
	if err != nil {
		return nil, err
	}
	schema := tbl.Schema()
	fr := newFrame(sqlparse.TableRef{Name: st.Table}, schema, s.db)
	frames := []*frame{fr}

	// Validate SET column names up front.
	setIdx := make([]int, len(st.Set))
	for i, a := range st.Set {
		ci := schema.Index(a.Column)
		if ci < 0 {
			return nil, fmt.Errorf("unknown column %q in update", a.Column)
		}
		setIdx[i] = ci
	}

	s.txnSaveTable(tbl)
	old, updated, err := tbl.Update(
		func(r sqltypes.Row) (bool, error) {
			fr.row = r
			return s.truthy(st.Where, frames)
		},
		func(r sqltypes.Row) (sqltypes.Row, error) {
			fr.row = r.Clone() // assignments see pre-update values
			out := r
			for i, a := range st.Set {
				v, err := s.eval(a.Value, frames)
				if err != nil {
					return nil, err
				}
				out[setIdx[i]] = v
			}
			return out, nil
		},
	)
	if err != nil {
		return nil, err
	}
	if err := s.fireTrigger(st.Table, sqlparse.OpUpdate, updated, old, schema); err != nil {
		return nil, err
	}
	return &sqltypes.ResultSet{RowsAffected: len(updated)}, nil
}

func (s *Session) execDelete(st *sqlparse.Delete) (*sqltypes.ResultSet, error) {
	tbl, err := s.resolveTable(st.Table)
	if err != nil {
		return nil, err
	}
	schema := tbl.Schema()
	fr := newFrame(sqlparse.TableRef{Name: st.Table}, schema, s.db)
	frames := []*frame{fr}

	s.txnSaveTable(tbl)
	removed, err := tbl.Delete(func(r sqltypes.Row) (bool, error) {
		fr.row = r
		return s.truthy(st.Where, frames)
	})
	if err != nil {
		return nil, err
	}
	if err := s.fireTrigger(st.Table, sqlparse.OpDelete, nil, removed, schema); err != nil {
		return nil, err
	}
	return &sqltypes.ResultSet{RowsAffected: len(removed)}, nil
}

// fireTrigger runs the native trigger for (table, op), if one exists and
// any rows were affected. The trigger body sees the inserted/deleted
// pseudo-tables; its output is appended to the session's pending extra
// results, which ExecBatch interleaves after the triggering statement —
// the order a real client would observe on the wire.
func (s *Session) fireTrigger(tableName sqlparse.ObjectName, op sqlparse.TriggerOp, inserted, deleted []sqltypes.Row, schema *sqltypes.Schema) error {
	if len(inserted) == 0 && len(deleted) == 0 {
		return nil
	}
	db, err := s.database(tableName.Database())
	if err != nil {
		return err
	}
	tr, ok := db.TriggerFor(tableName.Owner(), tableName.Name(), s.user, op)
	if !ok {
		return nil
	}
	if len(s.trigCtx) >= maxTriggerDepth {
		return fmt.Errorf("trigger nesting exceeds %d levels", maxTriggerDepth)
	}

	nullable := schema.Clone()
	for i := range nullable.Columns {
		nullable.Columns[i].Nullable = true
	}
	ctx := &triggerContext{}
	if inserted != nil {
		ctx.inserted = storage.NewTable(nullable)
		if err := ctx.inserted.ReplaceAll(inserted); err != nil {
			return fmt.Errorf("building inserted pseudo-table: %v", err)
		}
	}
	if deleted != nil {
		ctx.deleted = storage.NewTable(nullable)
		if err := ctx.deleted.ReplaceAll(deleted); err != nil {
			return fmt.Errorf("building deleted pseudo-table: %v", err)
		}
	}

	s.trigCtx = append(s.trigCtx, ctx)
	defer func() { s.trigCtx = s.trigCtx[:len(s.trigCtx)-1] }()

	for _, st := range tr.Body {
		rs, err := s.ExecStmt(st)
		if rs != nil && (rs.Schema != nil || len(rs.Messages) > 0) {
			s.extra = append(s.extra, rs)
		}
		if err != nil {
			return fmt.Errorf("trigger %s: %v", tr.Name, err)
		}
	}
	return nil
}
