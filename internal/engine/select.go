package engine

import (
	"fmt"
	"sort"
	"strings"

	"github.com/activedb/ecaagent/internal/sqlparse"
	"github.com/activedb/ecaagent/internal/sqltypes"
)

// execSelectStmt runs a SELECT, materializing the result. SELECT ... INTO
// creates the target table from the result (the Sybase idiom the agent's
// code generator uses to create shadow tables).
func (s *Session) execSelectStmt(st *sqlparse.Select) (*sqltypes.ResultSet, error) {
	rs, err := s.runSelect(st)
	if err != nil {
		return nil, err
	}
	if st.Into == nil {
		return rs, nil
	}
	db, err := s.database(st.Into.Database())
	if err != nil {
		return nil, err
	}
	schema := rs.Schema.Clone()
	// Result columns of a SELECT INTO are nullable unless they came from a
	// NOT NULL base column; we conservatively make them nullable, which is
	// what the agent's shadow tables need (vNo starts NULL-filled).
	for i := range schema.Columns {
		schema.Columns[i].Nullable = true
	}
	tbl, err := db.CreateTable(s.ownerFor(*st.Into), st.Into.Name(), schema)
	if err != nil {
		return nil, err
	}
	s.txnSaveTable(tbl)
	if err := tbl.InsertMany(rs.Rows); err != nil {
		return nil, err
	}
	return &sqltypes.ResultSet{RowsAffected: len(rs.Rows)}, nil
}

// sourceRow is one joined row across all FROM frames.
type sourceRow []sqltypes.Row

// runSelect evaluates the SELECT and returns the materialized rows.
func (s *Session) runSelect(st *sqlparse.Select) (*sqltypes.ResultSet, error) {
	// FROM-less SELECT: evaluate items once against no frames.
	if len(st.From) == 0 {
		return s.selectWithoutFrom(st)
	}

	frames := make([]*frame, len(st.From))
	var sourceLens []int
	sources := make([][]sqltypes.Row, len(st.From))
	for i, ref := range st.From {
		tbl, err := s.resolveTable(ref.Name)
		if err != nil {
			return nil, err
		}
		frames[i] = newFrame(ref, tbl.Schema(), s.db)
		sources[i] = tbl.Rows()
		sourceLens = append(sourceLens, len(sources[i]))
	}

	// Compile-time column validation (matters when zero rows match).
	if err := s.validateColumns(st.Where, frames); err != nil {
		return nil, err
	}
	for _, item := range st.Items {
		if !item.Star {
			if err := s.validateColumns(item.Expr, frames); err != nil {
				return nil, err
			}
		}
	}
	for _, ge := range st.GroupBy {
		if err := s.validateColumns(ge, frames); err != nil {
			return nil, err
		}
	}
	if err := s.validateColumns(st.Having, frames); err != nil {
		return nil, err
	}

	// Nested-loop cartesian product with WHERE filtering.
	var matched []sourceRow
	idx := make([]int, len(sources))
	if !anyEmpty(sourceLens) {
		for {
			for i := range frames {
				frames[i].row = sources[i][idx[i]]
			}
			ok, err := s.truthy(st.Where, frames)
			if err != nil {
				return nil, err
			}
			if ok {
				sr := make(sourceRow, len(sources))
				for i := range sources {
					sr[i] = sources[i][idx[i]]
				}
				matched = append(matched, sr)
			}
			if !advance(idx, sourceLens) {
				break
			}
		}
	}

	if len(st.GroupBy) > 0 || hasAggregates(st.Items) || hasAggregateExpr(st.Having) {
		return s.selectGrouped(st, frames, matched)
	}
	return s.selectPlain(st, frames, matched)
}

func anyEmpty(lens []int) bool {
	for _, n := range lens {
		if n == 0 {
			return true
		}
	}
	return false
}

// advance increments a mixed-radix counter; false when it wraps.
func advance(idx, lens []int) bool {
	for i := len(idx) - 1; i >= 0; i-- {
		idx[i]++
		if idx[i] < lens[i] {
			return true
		}
		idx[i] = 0
	}
	return false
}

func (s *Session) selectWithoutFrom(st *sqlparse.Select) (*sqltypes.ResultSet, error) {
	if hasAggregates(st.Items) {
		return nil, fmt.Errorf("aggregate without FROM")
	}
	if st.Where != nil || len(st.GroupBy) > 0 || st.Having != nil || len(st.OrderBy) > 0 {
		return nil, fmt.Errorf("WHERE/GROUP/HAVING/ORDER require FROM")
	}
	schema := &sqltypes.Schema{}
	row := sqltypes.Row{}
	for i, item := range st.Items {
		if item.Star {
			return nil, fmt.Errorf("SELECT * requires FROM")
		}
		v, err := s.eval(item.Expr, nil)
		if err != nil {
			return nil, err
		}
		schema.Columns = append(schema.Columns, sqltypes.Column{
			Name: itemName(item, i), Type: typeOf(v), Nullable: true,
		})
		row = append(row, v)
	}
	return &sqltypes.ResultSet{Schema: schema, Rows: []sqltypes.Row{row}}, nil
}

// projection describes the output columns: either an expansion of a frame's
// columns (star) or a single expression.
type projection struct {
	frameIdx int // for star columns
	colIdx   int
	expr     sqlparse.Expr // nil for star columns
	name     string
}

func (s *Session) buildProjections(st *sqlparse.Select, frames []*frame) ([]projection, error) {
	var projs []projection
	for i, item := range st.Items {
		switch {
		case item.Star && len(item.StarTable.Parts) == 0:
			for fi, f := range frames {
				for ci, col := range f.schema.Columns {
					projs = append(projs, projection{frameIdx: fi, colIdx: ci, name: col.Name})
				}
			}
		case item.Star:
			q := strings.ToLower(item.StarTable.String())
			found := false
			for fi, f := range frames {
				if !f.matches(q) {
					continue
				}
				for ci, col := range f.schema.Columns {
					projs = append(projs, projection{frameIdx: fi, colIdx: ci, name: col.Name})
				}
				found = true
				break
			}
			if !found {
				return nil, fmt.Errorf("unknown table or alias %q in select list", item.StarTable)
			}
		default:
			projs = append(projs, projection{expr: item.Expr, name: itemName(item, i)})
		}
	}
	return projs, nil
}

func itemName(item sqlparse.SelectItem, i int) string {
	if item.Alias != "" {
		return item.Alias
	}
	if cr, ok := item.Expr.(*sqlparse.ColumnRef); ok {
		return cr.Name
	}
	return fmt.Sprintf("col%d", i+1)
}

func typeOf(v sqltypes.Value) sqltypes.Type {
	switch v.Kind() {
	case sqltypes.KindInt:
		return sqltypes.Int
	case sqltypes.KindFloat:
		return sqltypes.Float
	case sqltypes.KindBit:
		return sqltypes.Bit
	case sqltypes.KindChar, sqltypes.KindVarChar:
		return sqltypes.VarChar(255)
	case sqltypes.KindText:
		return sqltypes.Text
	case sqltypes.KindDateTime:
		return sqltypes.DateTime
	default:
		return sqltypes.VarChar(255)
	}
}

// projectionSchema infers the output schema: star columns copy the source
// column type; expression columns are typed from their first value (or
// varchar when the result is empty).
func projectionSchema(projs []projection, frames []*frame, firstRow sqltypes.Row) *sqltypes.Schema {
	schema := &sqltypes.Schema{}
	for i, p := range projs {
		var col sqltypes.Column
		if p.expr == nil {
			src := frames[p.frameIdx].schema.Column(p.colIdx)
			col = sqltypes.Column{Name: p.name, Type: src.Type, Nullable: true}
		} else {
			typ := sqltypes.VarChar(255)
			if firstRow != nil {
				typ = typeOf(firstRow[i])
			}
			col = sqltypes.Column{Name: p.name, Type: typ, Nullable: true}
		}
		// Column names may repeat in SQL output; keep them as-is.
		schema.Columns = append(schema.Columns, col)
	}
	return schema
}

func (s *Session) selectPlain(st *sqlparse.Select, frames []*frame, matched []sourceRow) (*sqltypes.ResultSet, error) {
	projs, err := s.buildProjections(st, frames)
	if err != nil {
		return nil, err
	}
	type outRow struct {
		row sqltypes.Row
		src sourceRow
	}
	var out []outRow
	for _, sr := range matched {
		for i := range frames {
			frames[i].row = sr[i]
		}
		row := make(sqltypes.Row, len(projs))
		for i, p := range projs {
			if p.expr == nil {
				row[i] = sr[p.frameIdx][p.colIdx]
				continue
			}
			v, err := s.eval(p.expr, frames)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		out = append(out, outRow{row: row, src: sr})
	}

	// ORDER BY before DISTINCT projection-only handling: sort using source
	// rows (expressions can reference any source column) or output aliases.
	if len(st.OrderBy) > 0 {
		var sortErr error
		sort.SliceStable(out, func(a, b int) bool {
			for _, ob := range st.OrderBy {
				va, err := s.orderKey(ob.Expr, frames, out[a].src, out[a].row, projs)
				if err != nil {
					sortErr = err
					return false
				}
				vb, err := s.orderKey(ob.Expr, frames, out[b].src, out[b].row, projs)
				if err != nil {
					sortErr = err
					return false
				}
				c, known := va.Compare(vb)
				if !known {
					// Order NULLs first, as the server does.
					switch {
					case va.IsNull() && vb.IsNull():
						continue
					case va.IsNull():
						c = -1
					default:
						c = 1
					}
				}
				if c == 0 {
					continue
				}
				if ob.Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		if sortErr != nil {
			return nil, sortErr
		}
	}

	rows := make([]sqltypes.Row, len(out))
	for i, o := range out {
		rows[i] = o.row
	}
	if st.Distinct {
		rows = distinctRows(rows)
	}
	var first sqltypes.Row
	if len(rows) > 0 {
		first = rows[0]
	}
	return &sqltypes.ResultSet{Schema: projectionSchema(projs, frames, first), Rows: rows}, nil
}

// orderKey evaluates an ORDER BY expression: output alias reference first,
// then source-row evaluation.
func (s *Session) orderKey(e sqlparse.Expr, frames []*frame, src sourceRow, out sqltypes.Row, projs []projection) (sqltypes.Value, error) {
	if cr, ok := e.(*sqlparse.ColumnRef); ok && len(cr.Qualifier.Parts) == 0 {
		for i, p := range projs {
			if strings.EqualFold(p.name, cr.Name) {
				return out[i], nil
			}
		}
	}
	for i := range frames {
		frames[i].row = src[i]
	}
	return s.eval(e, frames)
}

func distinctRows(rows []sqltypes.Row) []sqltypes.Row {
	seen := make(map[string]bool, len(rows))
	var out []sqltypes.Row
	for _, r := range rows {
		key := rowKey(r)
		if !seen[key] {
			seen[key] = true
			out = append(out, r)
		}
	}
	return out
}

func rowKey(r sqltypes.Row) string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = fmt.Sprintf("%d:%s", v.Kind(), v.AsString())
	}
	return strings.Join(parts, "\x00")
}

// --- grouped / aggregate execution ---

func hasAggregates(items []sqlparse.SelectItem) bool {
	for _, it := range items {
		if it.Expr != nil && hasAggregateExpr(it.Expr) {
			return true
		}
	}
	return false
}

func hasAggregateExpr(e sqlparse.Expr) bool {
	switch e := e.(type) {
	case nil:
		return false
	case *sqlparse.FuncCall:
		if aggregateFuncs[e.Name] {
			return true
		}
		for _, a := range e.Args {
			if hasAggregateExpr(a) {
				return true
			}
		}
	case *sqlparse.BinaryExpr:
		return hasAggregateExpr(e.L) || hasAggregateExpr(e.R)
	case *sqlparse.UnaryExpr:
		return hasAggregateExpr(e.E)
	case *sqlparse.IsNull:
		return hasAggregateExpr(e.E)
	case *sqlparse.InList:
		if hasAggregateExpr(e.E) {
			return true
		}
		for _, x := range e.List {
			if hasAggregateExpr(x) {
				return true
			}
		}
	}
	return false
}

func (s *Session) selectGrouped(st *sqlparse.Select, frames []*frame, matched []sourceRow) (*sqltypes.ResultSet, error) {
	if hasStarItems(st.Items) {
		return nil, fmt.Errorf("SELECT * cannot be combined with aggregates")
	}
	// Partition matched rows into groups.
	groups := make(map[string][]sourceRow)
	var order []string
	for _, sr := range matched {
		for i := range frames {
			frames[i].row = sr[i]
		}
		var key string
		if len(st.GroupBy) > 0 {
			keys := make([]string, len(st.GroupBy))
			for i, ge := range st.GroupBy {
				v, err := s.eval(ge, frames)
				if err != nil {
					return nil, err
				}
				keys[i] = fmt.Sprintf("%d:%s", v.Kind(), v.AsString())
			}
			key = strings.Join(keys, "\x00")
		}
		if _, ok := groups[key]; !ok {
			order = append(order, key)
		}
		groups[key] = append(groups[key], sr)
	}
	// A global aggregate over zero rows still yields one (empty) group.
	if len(st.GroupBy) == 0 && len(order) == 0 {
		order = append(order, "")
		groups[""] = nil
	}

	schema := &sqltypes.Schema{}
	for i, item := range st.Items {
		schema.Columns = append(schema.Columns, sqltypes.Column{
			Name: itemName(item, i), Type: sqltypes.VarChar(255), Nullable: true,
		})
	}
	var rows []sqltypes.Row
	typed := false
	for _, key := range order {
		group := groups[key]
		if st.Having != nil {
			hv, err := s.evalAggExpr(st.Having, frames, group)
			if err != nil {
				return nil, err
			}
			ok, known := hv.AsBool()
			if !known || !ok {
				continue
			}
		}
		row := make(sqltypes.Row, len(st.Items))
		for i, item := range st.Items {
			v, err := s.evalAggExpr(item.Expr, frames, group)
			if err != nil {
				return nil, err
			}
			row[i] = v
			if !typed {
				schema.Columns[i].Type = typeOf(v)
			}
		}
		typed = true
		rows = append(rows, row)
	}

	if len(st.OrderBy) > 0 {
		var sortErr error
		sort.SliceStable(rows, func(a, b int) bool {
			for _, ob := range st.OrderBy {
				cr, ok := ob.Expr.(*sqlparse.ColumnRef)
				if !ok {
					sortErr = fmt.Errorf("ORDER BY with aggregates must reference output columns")
					return false
				}
				ci := schema.Index(cr.Name)
				if ci < 0 {
					sortErr = fmt.Errorf("ORDER BY column %q not in output", cr.Name)
					return false
				}
				c, known := rows[a][ci].Compare(rows[b][ci])
				if !known || c == 0 {
					continue
				}
				if ob.Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		if sortErr != nil {
			return nil, sortErr
		}
	}
	if st.Distinct {
		rows = distinctRows(rows)
	}
	return &sqltypes.ResultSet{Schema: schema, Rows: rows}, nil
}

func hasStarItems(items []sqlparse.SelectItem) bool {
	for _, it := range items {
		if it.Star {
			return true
		}
	}
	return false
}

// evalAggExpr evaluates an expression over a group: aggregate calls are
// computed across the group's rows; everything else is evaluated on the
// group's first row.
func (s *Session) evalAggExpr(e sqlparse.Expr, frames []*frame, group []sourceRow) (sqltypes.Value, error) {
	switch e := e.(type) {
	case *sqlparse.FuncCall:
		if aggregateFuncs[e.Name] {
			return s.computeAggregate(e, frames, group)
		}
		if hasAggregateExpr(e) {
			// A scalar function over aggregate results, e.g. abs(-sum(a)):
			// compute each argument over the group, then apply the
			// function to the resulting constants.
			args := make([]sqlparse.Expr, len(e.Args))
			for i, a := range e.Args {
				v, err := s.evalAggExpr(a, frames, group)
				if err != nil {
					return sqltypes.Null, err
				}
				args[i] = &sqlparse.Literal{Value: v}
			}
			return s.evalFunc(&sqlparse.FuncCall{Name: e.Name, Args: args}, nil)
		}
	case *sqlparse.BinaryExpr:
		if hasAggregateExpr(e) {
			l, err := s.evalAggExpr(e.L, frames, group)
			if err != nil {
				return sqltypes.Null, err
			}
			r, err := s.evalAggExpr(e.R, frames, group)
			if err != nil {
				return sqltypes.Null, err
			}
			return s.evalBinary(&sqlparse.BinaryExpr{Op: e.Op,
				L: &sqlparse.Literal{Value: l}, R: &sqlparse.Literal{Value: r}}, nil)
		}
	case *sqlparse.UnaryExpr:
		if hasAggregateExpr(e) {
			v, err := s.evalAggExpr(e.E, frames, group)
			if err != nil {
				return sqltypes.Null, err
			}
			return s.evalUnary(&sqlparse.UnaryExpr{Op: e.Op, E: &sqlparse.Literal{Value: v}}, nil)
		}
	}
	// Non-aggregate: evaluate on the first row of the group.
	if len(group) == 0 {
		return sqltypes.Null, nil
	}
	for i := range frames {
		frames[i].row = group[0][i]
	}
	return s.eval(e, frames)
}

func (s *Session) computeAggregate(e *sqlparse.FuncCall, frames []*frame, group []sourceRow) (sqltypes.Value, error) {
	if e.Name == "count" && e.Star {
		return sqltypes.NewInt(int64(len(group))), nil
	}
	if len(e.Args) != 1 {
		return sqltypes.Null, fmt.Errorf("%s() takes one argument", e.Name)
	}
	var values []sqltypes.Value
	for _, sr := range group {
		for i := range frames {
			frames[i].row = sr[i]
		}
		v, err := s.eval(e.Args[0], frames)
		if err != nil {
			return sqltypes.Null, err
		}
		if !v.IsNull() {
			values = append(values, v)
		}
	}
	switch e.Name {
	case "count":
		return sqltypes.NewInt(int64(len(values))), nil
	case "sum", "avg":
		if len(values) == 0 {
			return sqltypes.Null, nil
		}
		allInt := true
		total := 0.0
		var itotal int64
		for _, v := range values {
			f, ok := v.AsFloat()
			if !ok {
				return sqltypes.Null, fmt.Errorf("%s() over non-numeric value", e.Name)
			}
			total += f
			if v.Kind() == sqltypes.KindInt || v.Kind() == sqltypes.KindBit {
				itotal += v.Int()
			} else {
				allInt = false
			}
		}
		if e.Name == "avg" {
			return sqltypes.NewFloat(total / float64(len(values))), nil
		}
		if allInt {
			return sqltypes.NewInt(itotal), nil
		}
		return sqltypes.NewFloat(total), nil
	case "min", "max":
		if len(values) == 0 {
			return sqltypes.Null, nil
		}
		best := values[0]
		for _, v := range values[1:] {
			c, known := v.Compare(best)
			if !known {
				return sqltypes.Null, fmt.Errorf("%s() over incomparable values", e.Name)
			}
			if (e.Name == "min" && c < 0) || (e.Name == "max" && c > 0) {
				best = v
			}
		}
		return best, nil
	default:
		return sqltypes.Null, fmt.Errorf("unknown aggregate %q", e.Name)
	}
}
