package engine

import (
	"testing"
)

func TestRuntimeNotAndNegation(t *testing.T) {
	s, _ := newTestSession(t)
	mustExec(t, s, "create table t (a int null)")
	mustExec(t, s, "insert t values (1) insert t values (2) insert t values (null)")
	rows := lastRows(mustExec(t, s, "select a from t where not a = 1"))
	if len(rows) != 1 || rows[0][0].Int() != 2 {
		t.Errorf("NOT comparison: %v", rows)
	}
	rows = lastRows(mustExec(t, s, "select -a from t where a = 2"))
	if rows[0][0].Int() != -2 {
		t.Errorf("unary minus on column: %v", rows)
	}
	rows = lastRows(mustExec(t, s, "select a from t where not (a is null)"))
	if len(rows) != 2 {
		t.Errorf("NOT over IS NULL: %v", rows)
	}
	// NOT of unknown stays unknown: no rows where NOT(NULL = 1).
	rows = lastRows(mustExec(t, s, "select a from t where a is null and not a = 1"))
	if len(rows) != 0 {
		t.Errorf("NOT unknown leaked rows: %v", rows)
	}
	// Unary minus on float and on NULL.
	rows = lastRows(mustExec(t, s, "select -2.5, -(a - a) from t where a = 1"))
	if rows[0][0].Float() != -2.5 || rows[0][1].Int() != 0 {
		t.Errorf("unary minus forms: %v", rows)
	}
	if _, err := s.ExecScript("select -'abc'"); err == nil {
		t.Error("negating a string succeeded")
	}
}

func TestSessionAccessors(t *testing.T) {
	s, _ := newTestSession(t)
	if s.User() != "sharma" || s.DatabaseName() != "db" {
		t.Errorf("accessors: %q %q", s.User(), s.DatabaseName())
	}
	if s.eng.Catalog() == nil {
		t.Error("Catalog() nil")
	}
}

func TestHavingWithoutGroupBy(t *testing.T) {
	s, _ := newTestSession(t)
	mustExec(t, s, "create table t (a int null)")
	mustExec(t, s, "insert t values (1) insert t values (2)")
	rows := lastRows(mustExec(t, s, "select sum(a) from t having count(*) > 1"))
	if len(rows) != 1 || rows[0][0].Int() != 3 {
		t.Errorf("having over global aggregate: %v", rows)
	}
	rows = lastRows(mustExec(t, s, "select sum(a) from t having count(*) > 5"))
	if len(rows) != 0 {
		t.Errorf("failing having kept row: %v", rows)
	}
}

func TestUnaryInAggregateAndNestedFunc(t *testing.T) {
	s, _ := newTestSession(t)
	mustExec(t, s, "create table t (a int null)")
	mustExec(t, s, "insert t values (1) insert t values (2)")
	rows := lastRows(mustExec(t, s, "select -sum(a), abs(-sum(a)) from t"))
	if rows[0][0].Int() != -3 || rows[0][1].Int() != 3 {
		t.Errorf("aggregate in expressions: %v", rows)
	}
}

func TestFromLessSelectRejectsClauses(t *testing.T) {
	s, _ := newTestSession(t)
	for _, bad := range []string{
		"select 1 where 1 = 1",
		"select 1 order by col1",
	} {
		if _, err := s.ExecScript(bad); err == nil {
			t.Errorf("%q succeeded", bad)
		}
	}
}
