package engine

import (
	"fmt"
	"strings"
	"testing"
)

func TestOrderByNullsFirst(t *testing.T) {
	s, _ := newTestSession(t)
	mustExec(t, s, "create table t (a int null)")
	mustExec(t, s, "insert t values (2) insert t values (null) insert t values (1)")
	rows := lastRows(mustExec(t, s, "select a from t order by a"))
	if !rows[0][0].IsNull() || rows[1][0].Int() != 1 || rows[2][0].Int() != 2 {
		t.Errorf("order with nulls: %v", rows)
	}
	rows = lastRows(mustExec(t, s, "select a from t order by a desc"))
	if rows[0][0].Int() != 2 {
		t.Errorf("desc order: %v", rows)
	}
}

func TestInListWithNulls(t *testing.T) {
	s, _ := newTestSession(t)
	mustExec(t, s, "create table t (a int null)")
	mustExec(t, s, "insert t values (1) insert t values (2) insert t values (null)")
	rows := lastRows(mustExec(t, s, "select a from t where a in (1, null)"))
	if len(rows) != 1 || rows[0][0].Int() != 1 {
		t.Errorf("IN with NULL list element: %v", rows)
	}
	rows = lastRows(mustExec(t, s, "select a from t where a not in (1)"))
	if len(rows) != 1 || rows[0][0].Int() != 2 {
		t.Errorf("NOT IN skips NULL rows: %v", rows)
	}
}

func TestSelectIntoFromJoin(t *testing.T) {
	s, _ := newTestSession(t)
	mustExec(t, s, `create table a (k int null, x varchar(5) null)
create table b (k int null, y float null)
insert a values (1, 'one') insert a values (2, 'two')
insert b values (1, 1.5) insert b values (3, 3.5)`)
	mustExec(t, s, "select a.x, b.y into joined from a, b where a.k = b.k")
	rows := lastRows(mustExec(t, s, "select x, y from joined"))
	if len(rows) != 1 || rows[0][0].Str() != "one" || rows[0][1].Float() != 1.5 {
		t.Errorf("select into join: %v", rows)
	}
}

func TestTransactionRollsBackTriggerEffects(t *testing.T) {
	// A transaction that fires a trigger must undo the trigger's writes on
	// rollback — the property the agent's shadow tables depend on.
	s, _ := newTestSession(t)
	mustExec(t, s, "create table base (a int null) create table shadow (a int null)")
	mustExec(t, s, "create trigger tg on base for insert as insert shadow select * from inserted")
	mustExec(t, s, "begin tran insert base values (1) insert base values (2)")
	rows := lastRows(mustExec(t, s, "select count(*) from shadow"))
	if rows[0][0].Int() != 2 {
		t.Fatalf("shadow rows inside txn: %v", rows[0])
	}
	mustExec(t, s, "rollback")
	rows = lastRows(mustExec(t, s, "select count(*) from base"))
	if rows[0][0].Int() != 0 {
		t.Errorf("base after rollback: %v", rows[0])
	}
	rows = lastRows(mustExec(t, s, "select count(*) from shadow"))
	if rows[0][0].Int() != 0 {
		t.Errorf("shadow after rollback: %v (trigger effects survived)", rows[0])
	}
}

func TestProcedureRecursionLimit(t *testing.T) {
	s, _ := newTestSession(t)
	mustExec(t, s, "create table t (a int null)")
	// A procedure that calls itself must hit the nesting limit.
	mustExec(t, s, "create procedure p as execute p")
	if _, err := s.ExecScript("execute p"); err == nil ||
		!strings.Contains(err.Error(), "nesting") {
		t.Errorf("recursion error: %v", err)
	}
}

func TestAggregatesOnStringsAndDates(t *testing.T) {
	s, _ := newTestSession(t)
	mustExec(t, s, "create table t (name varchar(10) null, ts datetime null)")
	mustExec(t, s, `insert t values ('beta', '2026-01-02 00:00:00')
insert t values ('alpha', '2026-01-03 00:00:00')
insert t values ('gamma', '2026-01-01 00:00:00')`)
	rows := lastRows(mustExec(t, s, "select min(name), max(name), min(ts), max(ts) from t"))
	r := rows[0]
	if r[0].Str() != "alpha" || r[1].Str() != "gamma" {
		t.Errorf("string min/max: %v", r)
	}
	if r[2].Time().Day() != 1 || r[3].Time().Day() != 3 {
		t.Errorf("datetime min/max: %v", r)
	}
	// sum over strings errors.
	if _, err := s.ExecScript("select sum(name) from t"); err == nil {
		t.Error("sum over strings accepted")
	}
}

func TestGroupByExpressionKey(t *testing.T) {
	s, _ := newTestSession(t)
	mustExec(t, s, "create table t (a int null)")
	for i := 0; i < 10; i++ {
		mustExec(t, s, fmt.Sprintf("insert t values (%d)", i))
	}
	rows := lastRows(mustExec(t, s, "select a % 2, count(*) from t group by a % 2 order by col1"))
	if len(rows) != 2 || rows[0][1].Int() != 5 || rows[1][1].Int() != 5 {
		t.Errorf("expression group: %v", rows)
	}
}

func TestCrossDatabaseDML(t *testing.T) {
	s, _ := newTestSession(t)
	mustExec(t, s, "create table t (a int null)")
	mustExec(t, s, "create database other use other")
	mustExec(t, s, "insert db.sharma.t values (42)")
	mustExec(t, s, "update db.sharma.t set a = a + 1")
	rows := lastRows(mustExec(t, s, "select a from db.sharma.t"))
	if len(rows) != 1 || rows[0][0].Int() != 43 {
		t.Errorf("cross-db dml: %v", rows)
	}
	mustExec(t, s, "delete db.sharma.t")
	rows = lastRows(mustExec(t, s, "select count(*) from db.sharma.t"))
	if rows[0][0].Int() != 0 {
		t.Errorf("cross-db delete: %v", rows)
	}
}

func TestAlterTableVisibleInStar(t *testing.T) {
	s, _ := newTestSession(t)
	mustExec(t, s, "create table t (a int null)")
	mustExec(t, s, "insert t values (1)")
	mustExec(t, s, "alter table t add b varchar(5) null")
	rows := lastRows(mustExec(t, s, "select * from t"))
	if len(rows[0]) != 2 || !rows[0][1].IsNull() {
		t.Errorf("star after alter: %v", rows)
	}
	mustExec(t, s, "update t set b = 'x'")
	rows = lastRows(mustExec(t, s, "select b from t"))
	if rows[0][0].Str() != "x" {
		t.Errorf("new column update: %v", rows)
	}
}

func TestTriggerChainMessageOrder(t *testing.T) {
	s, _ := newTestSession(t)
	mustExec(t, s, "create table a (x int null) create table b (x int null)")
	mustExec(t, s, "create trigger ta on a for insert as print 'ta before' insert b select * from inserted print 'ta after'")
	mustExec(t, s, "create trigger tb on b for insert as print 'tb'")
	rs := mustExec(t, s, "insert a values (1)")
	msgs := allMessages(rs)
	want := []string{"ta before", "tb", "ta after"}
	if fmt.Sprint(msgs) != fmt.Sprint(want) {
		t.Errorf("nested trigger message order: %v", msgs)
	}
}

func TestStringConcatAndLikeInWhere(t *testing.T) {
	s, _ := newTestSession(t)
	mustExec(t, s, "create table t (first varchar(10) null, last varchar(10) null)")
	mustExec(t, s, "insert t values ('John', 'Smith') insert t values ('Jane', 'Doe')")
	rows := lastRows(mustExec(t, s, "select first + ' ' + last from t where first like 'J_hn'"))
	if len(rows) != 1 || rows[0][0].Str() != "John Smith" {
		t.Errorf("concat+like: %v", rows)
	}
}

func TestDistinctOnExpressions(t *testing.T) {
	s, _ := newTestSession(t)
	mustExec(t, s, "create table t (a int null)")
	mustExec(t, s, "insert t values (1) insert t values (3) insert t values (5)")
	rows := lastRows(mustExec(t, s, "select distinct a % 2 from t"))
	if len(rows) != 1 || rows[0][0].Int() != 1 {
		t.Errorf("distinct expr: %v", rows)
	}
}

func TestInsertSelectWithColumnList(t *testing.T) {
	s, _ := newTestSession(t)
	mustExec(t, s, "create table src (a int null, b int null) create table dst (x int null, y int null, z int null)")
	mustExec(t, s, "insert src values (1, 2)")
	mustExec(t, s, "insert dst (z, x) select a, b from src")
	rows := lastRows(mustExec(t, s, "select x, y, z from dst"))
	if rows[0][0].Int() != 2 || !rows[0][1].IsNull() || rows[0][2].Int() != 1 {
		t.Errorf("column-list insert-select: %v", rows)
	}
}

func TestSelfJoin(t *testing.T) {
	s, _ := newTestSession(t)
	mustExec(t, s, "create table emp (id int null, boss int null)")
	mustExec(t, s, "insert emp values (1, null) insert emp values (2, 1) insert emp values (3, 1)")
	rows := lastRows(mustExec(t, s,
		"select e.id, m.id from emp e, emp m where e.boss = m.id order by e.id"))
	if len(rows) != 2 || rows[0][0].Int() != 2 || rows[0][1].Int() != 1 {
		t.Errorf("self join: %v", rows)
	}
}

func TestUpdateInsideTriggerSeesConsistentState(t *testing.T) {
	// The Figure 11 pattern: the trigger updates a counter table and joins
	// against it in the same body.
	s, _ := newTestSession(t)
	mustExec(t, s, "create table t (a int null) create table counter (n int null) insert counter values (0)")
	mustExec(t, s, `create trigger tg on t for insert as
update counter set n = n + 1
insert t_log select i.a, c.n from inserted i, counter c`)
	mustExec(t, s, "create table t_log (a int null, n int null)")
	// Re-create the trigger now that t_log exists (engine validates lazily
	// at execution, so ordering is fine either way).
	for i := 1; i <= 3; i++ {
		mustExec(t, s, fmt.Sprintf("insert t values (%d)", i*10))
	}
	rows := lastRows(mustExec(t, s, "select a, n from t_log order by n"))
	if len(rows) != 3 || rows[0][1].Int() != 1 || rows[2][1].Int() != 3 {
		t.Errorf("counter progression: %v", rows)
	}
}

func TestPrintWithFunctions(t *testing.T) {
	s, _ := newTestSession(t)
	rs := mustExec(t, s, "print 'user is ' + user_name() + ' in ' + db_name()")
	msgs := allMessages(rs)
	if len(msgs) != 1 || msgs[0] != "user is sharma in db" {
		t.Errorf("print: %v", msgs)
	}
}

func TestEmptyBatchAndSemicolons(t *testing.T) {
	s, _ := newTestSession(t)
	rs, err := s.ExecScript(";;;")
	if err != nil || len(rs) != 0 {
		t.Errorf("semicolon batch: %v %v", rs, err)
	}
	rs, err = s.ExecScript("   \n\t  ")
	if err != nil || len(rs) != 0 {
		t.Errorf("blank batch: %v %v", rs, err)
	}
	mustExec(t, s, "create table t (a int null); insert t values (1); select a from t")
}
