package engine

import (
	"strings"
	"testing"
)

func TestSpHelpListsTables(t *testing.T) {
	s, _ := newTestSession(t)
	mustExec(t, s, "create table stock (symbol varchar(10), price float null)")
	mustExec(t, s, "create table trades (id int null)")
	rows := lastRows(mustExec(t, s, "execute sp_help"))
	if len(rows) != 2 {
		t.Fatalf("sp_help rows: %v", rows)
	}
	names := []string{rows[0][0].Str(), rows[1][0].Str()}
	if names[0] != "sharma.stock" || names[1] != "sharma.trades" {
		t.Errorf("sp_help names: %v", names)
	}
}

func TestSpHelpDescribesTable(t *testing.T) {
	s, _ := newTestSession(t)
	mustExec(t, s, "create table stock (symbol varchar(10) not null, price float null)")
	rows := lastRows(mustExec(t, s, "exec sp_help stock"))
	if len(rows) != 2 {
		t.Fatalf("describe rows: %v", rows)
	}
	if rows[0][0].Str() != "symbol" || rows[0][1].Str() != "varchar" ||
		rows[0][2].Int() != 10 || rows[0][3].Str() != "not null" {
		t.Errorf("column row: %v", rows[0])
	}
	if rows[1][3].Str() != "NULL" {
		t.Errorf("nullable display: %v", rows[1])
	}
	// Quoted form also accepted.
	rows = lastRows(mustExec(t, s, "exec sp_help 'stock'"))
	if len(rows) != 2 {
		t.Errorf("quoted arg: %v", rows)
	}
	if _, err := s.ExecScript("exec sp_help ghost"); err == nil {
		t.Error("sp_help on missing table succeeded")
	}
}

func TestSpHelpText(t *testing.T) {
	s, _ := newTestSession(t)
	mustExec(t, s, "create table t (a int null)")
	mustExec(t, s, "create procedure p_x as print 'hello'")
	mustExec(t, s, "create trigger tg on t for insert as print 'fired'")
	rs := mustExec(t, s, "exec sp_helptext p_x")
	msgs := allMessages(rs)
	if len(msgs) != 1 || !strings.Contains(msgs[0], "create procedure") {
		t.Errorf("proc text: %v", msgs)
	}
	rs = mustExec(t, s, "exec sp_helptext tg")
	msgs = allMessages(rs)
	if len(msgs) != 1 || !strings.Contains(msgs[0], "create trigger") {
		t.Errorf("trigger text: %v", msgs)
	}
	if _, err := s.ExecScript("exec sp_helptext ghost"); err == nil {
		t.Error("sp_helptext on missing object succeeded")
	}
	if _, err := s.ExecScript("exec sp_helptext"); err == nil {
		t.Error("sp_helptext without argument succeeded")
	}
}

func TestSpHelpDB(t *testing.T) {
	s, _ := newTestSession(t)
	rows := lastRows(mustExec(t, s, "exec sp_helpdb"))
	var names []string
	for _, r := range rows {
		names = append(names, r[0].Str())
	}
	if len(names) != 2 || names[0] != "db" || names[1] != "master" {
		t.Errorf("databases: %v", names)
	}
}

func TestSystemProcArgValidation(t *testing.T) {
	s, _ := newTestSession(t)
	if _, err := s.ExecScript("exec sp_help a, b"); err == nil {
		t.Error("two args accepted")
	}
	// A user procedure can shadow nothing: qualified names bypass the
	// builtin dispatch.
	if _, err := s.ExecScript("exec db.sharma.sp_help"); err == nil {
		t.Error("qualified sp_help should resolve as user proc and fail")
	}
}
