package engine

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/activedb/ecaagent/internal/catalog"
	"github.com/activedb/ecaagent/internal/sqltypes"
)

// newTestSession builds an engine with one database "db" and a session
// using it, with notifications captured in the returned slice.
func newTestSession(t *testing.T) (*Session, *[]string) {
	t.Helper()
	eng := New(catalog.New())
	var notes []string
	eng.SetNotifier(func(host string, port int, msg string) error {
		notes = append(notes, fmt.Sprintf("%s:%d/%s", host, port, msg))
		return nil
	})
	s := eng.NewSession("sharma")
	mustExec(t, s, "create database db")
	mustExec(t, s, "use db")
	return s, &notes
}

func mustExec(t *testing.T, s *Session, sql string) []*sqltypes.ResultSet {
	t.Helper()
	rs, err := s.ExecScript(sql)
	if err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
	return rs
}

// lastRows returns the rows of the last result set that has a schema.
func lastRows(rs []*sqltypes.ResultSet) []sqltypes.Row {
	for i := len(rs) - 1; i >= 0; i-- {
		if rs[i].Schema != nil {
			return rs[i].Rows
		}
	}
	return nil
}

func allMessages(rs []*sqltypes.ResultSet) []string {
	var out []string
	for _, r := range rs {
		out = append(out, r.Messages...)
	}
	return out
}

func TestCreateInsertSelect(t *testing.T) {
	s, _ := newTestSession(t)
	mustExec(t, s, "create table stock (symbol varchar(10) not null, price float null, vol int null)")
	mustExec(t, s, "insert stock values ('IBM', 100.5, 1000)")
	mustExec(t, s, "insert into stock (symbol, price) values ('T', 20)")
	rs := mustExec(t, s, "select symbol, price, vol from stock")
	rows := lastRows(rs)
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0][0].Str() != "IBM" || rows[0][1].Float() != 100.5 {
		t.Errorf("row0: %v", rows[0])
	}
	if !rows[1][2].IsNull() {
		t.Errorf("unset column should be NULL: %v", rows[1])
	}
}

func TestSelectWhereAndProjection(t *testing.T) {
	s, _ := newTestSession(t)
	mustExec(t, s, "create table stock (symbol varchar(10), price float null)")
	for i := 1; i <= 5; i++ {
		mustExec(t, s, fmt.Sprintf("insert stock values ('S%d', %d)", i, i*10))
	}
	rows := lastRows(mustExec(t, s, "select symbol from stock where price > 20 and price < 50"))
	if len(rows) != 2 {
		t.Fatalf("got %v", rows)
	}
	rows = lastRows(mustExec(t, s, "select price * 2 as dbl from stock where symbol = 'S1'"))
	if rows[0][0].Float() != 20 {
		t.Errorf("computed column: %v", rows[0])
	}
	rows = lastRows(mustExec(t, s, "select symbol from stock where symbol like 'S%' and price in (10, 30)"))
	if len(rows) != 2 {
		t.Errorf("like+in: %v", rows)
	}
}

func TestJoin(t *testing.T) {
	s, _ := newTestSession(t)
	mustExec(t, s, `create table stock (symbol varchar(10), price float null)
		create table trades (symbol varchar(10), qty int null)`)
	mustExec(t, s, `insert stock values ('IBM', 100)
		insert stock values ('T', 20)
		insert trades values ('IBM', 5)
		insert trades values ('IBM', 7)
		insert trades values ('X', 1)`)
	rows := lastRows(mustExec(t, s,
		"select s.symbol, s.price, t.qty from stock s, trades t where s.symbol = t.symbol"))
	if len(rows) != 2 {
		t.Fatalf("join rows: %v", rows)
	}
	for _, r := range rows {
		if r[0].Str() != "IBM" {
			t.Errorf("join produced %v", r)
		}
	}
}

func TestAggregatesAndGroupBy(t *testing.T) {
	s, _ := newTestSession(t)
	mustExec(t, s, "create table trades (symbol varchar(10), qty int null, price float null)")
	data := []struct {
		sym   string
		qty   int
		price float64
	}{
		{"IBM", 10, 100}, {"IBM", 20, 102}, {"T", 5, 20}, {"T", 15, 22}, {"X", 1, 5},
	}
	for _, d := range data {
		mustExec(t, s, fmt.Sprintf("insert trades values ('%s', %d, %g)", d.sym, d.qty, d.price))
	}
	rows := lastRows(mustExec(t, s, "select count(*) from trades"))
	if rows[0][0].Int() != 5 {
		t.Errorf("count(*): %v", rows[0])
	}
	rows = lastRows(mustExec(t, s, "select sum(qty), min(price), max(price), avg(qty) from trades"))
	if rows[0][0].Int() != 51 || rows[0][1].Float() != 5 || rows[0][2].Float() != 102 {
		t.Errorf("aggregates: %v", rows[0])
	}
	rows = lastRows(mustExec(t, s,
		"select symbol, sum(qty) as total from trades group by symbol having count(*) > 1 order by total desc"))
	if len(rows) != 2 {
		t.Fatalf("group rows: %v", rows)
	}
	if rows[0][0].Str() != "IBM" || rows[0][1].Int() != 30 {
		t.Errorf("grouped row0: %v", rows[0])
	}
	if rows[1][0].Str() != "T" || rows[1][1].Int() != 20 {
		t.Errorf("grouped row1: %v", rows[1])
	}
	// Aggregate over empty table yields one row.
	mustExec(t, s, "create table empty (a int null)")
	rows = lastRows(mustExec(t, s, "select count(*), sum(a) from empty"))
	if rows[0][0].Int() != 0 || !rows[0][1].IsNull() {
		t.Errorf("empty aggregates: %v", rows[0])
	}
}

func TestOrderByDistinct(t *testing.T) {
	s, _ := newTestSession(t)
	mustExec(t, s, "create table t (a int null, b varchar(5) null)")
	mustExec(t, s, `insert t values (3, 'x')
		insert t values (1, 'y')
		insert t values (2, 'x')
		insert t values (1, 'y')`)
	rows := lastRows(mustExec(t, s, "select a from t order by a"))
	got := []int64{rows[0][0].Int(), rows[1][0].Int(), rows[2][0].Int(), rows[3][0].Int()}
	if got[0] != 1 || got[1] != 1 || got[2] != 2 || got[3] != 3 {
		t.Errorf("order: %v", got)
	}
	rows = lastRows(mustExec(t, s, "select distinct b from t order by b desc"))
	if len(rows) != 2 || rows[0][0].Str() != "y" {
		t.Errorf("distinct: %v", rows)
	}
}

func TestSelectInto(t *testing.T) {
	s, _ := newTestSession(t)
	mustExec(t, s, "create table stock (symbol varchar(10), price float null)")
	mustExec(t, s, "insert stock values ('IBM', 100)")
	// The Figure 11 idiom: clone structure with a false predicate.
	mustExec(t, s, "select * into stock_inserted from stock where 1 = 2")
	rows := lastRows(mustExec(t, s, "select * from stock_inserted"))
	if len(rows) != 0 {
		t.Errorf("into-with-false-predicate copied rows: %v", rows)
	}
	mustExec(t, s, "alter table stock_inserted add vNo int null")
	mustExec(t, s, "insert stock_inserted select symbol, price, 1 from stock")
	rows = lastRows(mustExec(t, s, "select vNo from stock_inserted"))
	if len(rows) != 1 || rows[0][0].Int() != 1 {
		t.Errorf("shadow insert: %v", rows)
	}
}

func TestFromLessSelect(t *testing.T) {
	s, _ := newTestSession(t)
	rows := lastRows(mustExec(t, s, "select 1 + 1, 'a' + 'b', db_name(), user_name()"))
	if rows[0][0].Int() != 2 || rows[0][1].Str() != "ab" {
		t.Errorf("fromless: %v", rows[0])
	}
	if rows[0][2].Str() != "db" || rows[0][3].Str() != "sharma" {
		t.Errorf("context funcs: %v", rows[0])
	}
}

func TestGetdate(t *testing.T) {
	s, _ := newTestSession(t)
	fixed := time.Date(2026, 7, 4, 12, 0, 0, 0, time.UTC)
	s.eng.SetClock(func() time.Time { return fixed })
	rows := lastRows(mustExec(t, s, "select getdate()"))
	if !rows[0][0].Time().Equal(fixed) {
		t.Errorf("getdate: %v", rows[0][0])
	}
}

func TestUpdateDelete(t *testing.T) {
	s, _ := newTestSession(t)
	mustExec(t, s, "create table t (a int null, b int null)")
	for i := 0; i < 10; i++ {
		mustExec(t, s, fmt.Sprintf("insert t values (%d, 0)", i))
	}
	rs := mustExec(t, s, "update t set b = a * 2 where a >= 5")
	if rs[0].RowsAffected != 5 {
		t.Errorf("update affected %d", rs[0].RowsAffected)
	}
	rows := lastRows(mustExec(t, s, "select b from t where a = 7"))
	if rows[0][0].Int() != 14 {
		t.Errorf("update result: %v", rows[0])
	}
	rs = mustExec(t, s, "delete t where a < 3")
	if rs[0].RowsAffected != 3 {
		t.Errorf("delete affected %d", rs[0].RowsAffected)
	}
	rows = lastRows(mustExec(t, s, "select count(*) from t"))
	if rows[0][0].Int() != 7 {
		t.Errorf("count after delete: %v", rows[0])
	}
	// Update referencing pre-update values: swap-like semantics.
	mustExec(t, s, "create table sw (x int null, y int null)")
	mustExec(t, s, "insert sw values (1, 2)")
	mustExec(t, s, "update sw set x = y, y = x")
	rows = lastRows(mustExec(t, s, "select x, y from sw"))
	if rows[0][0].Int() != 2 || rows[0][1].Int() != 1 {
		t.Errorf("swap update: %v", rows[0])
	}
}

func TestPrint(t *testing.T) {
	s, _ := newTestSession(t)
	rs := mustExec(t, s, "print 'hello ' + 'world'")
	msgs := allMessages(rs)
	if len(msgs) != 1 || msgs[0] != "hello world" {
		t.Errorf("print: %v", msgs)
	}
}

func TestNativeTriggerInsertedPseudoTable(t *testing.T) {
	s, notes := newTestSession(t)
	mustExec(t, s, "create table stock (symbol varchar(10), price float null)")
	mustExec(t, s, `create trigger tg on stock for insert as
print 'trigger fired'
select * from inserted
select syb_sendmsg('127.0.0.1', 10006, 'stock insert')`)
	rs := mustExec(t, s, "insert stock values ('IBM', 100)")
	msgs := allMessages(rs)
	if len(msgs) != 1 || msgs[0] != "trigger fired" {
		t.Errorf("trigger messages: %v", msgs)
	}
	found := false
	for _, r := range rs {
		if r.Schema != nil && len(r.Rows) == 1 &&
			r.Rows[0][0].Kind() == sqltypes.KindVarChar && r.Rows[0][0].Str() == "IBM" {
			found = true
		}
	}
	if !found {
		t.Errorf("inserted pseudo-table not visible: %+v", rs)
	}
	if len(*notes) != 1 || !strings.Contains((*notes)[0], "stock insert") {
		t.Errorf("notification: %v", *notes)
	}
	// Pseudo-table not visible outside trigger scope.
	if _, err := s.ExecScript("select * from inserted"); err == nil {
		t.Error("inserted visible outside trigger")
	}
}

func TestNativeTriggerDeleteAndUpdate(t *testing.T) {
	s, _ := newTestSession(t)
	mustExec(t, s, "create table t (a int null)")
	mustExec(t, s, "create table dlog (a int null)")
	mustExec(t, s, "create table ulog (old_a int null, new_a int null)")
	mustExec(t, s, "create trigger td on t for delete as insert dlog select * from deleted")
	mustExec(t, s, `create trigger tu on t for update as
insert ulog select d.a, i.a from deleted d, inserted i`)
	mustExec(t, s, "insert t values (1) insert t values (2) insert t values (3)")
	mustExec(t, s, "update t set a = a + 10 where a = 2")
	rows := lastRows(mustExec(t, s, "select old_a, new_a from ulog"))
	if len(rows) != 1 || rows[0][0].Int() != 2 || rows[0][1].Int() != 12 {
		t.Errorf("update trigger log: %v", rows)
	}
	mustExec(t, s, "delete t where a = 1")
	rows = lastRows(mustExec(t, s, "select a from dlog"))
	if len(rows) != 1 || rows[0][0].Int() != 1 {
		t.Errorf("delete trigger log: %v", rows)
	}
}

func TestTriggerNotFiredOnZeroRows(t *testing.T) {
	s, _ := newTestSession(t)
	mustExec(t, s, "create table t (a int null)")
	mustExec(t, s, "create trigger tg on t for delete as print 'fired'")
	rs := mustExec(t, s, "delete t where a = 99")
	if len(allMessages(rs)) != 0 {
		t.Error("trigger fired on zero affected rows")
	}
}

func TestTriggerCascadeAndDepthLimit(t *testing.T) {
	s, _ := newTestSession(t)
	mustExec(t, s, "create table a (x int null) create table b (x int null)")
	mustExec(t, s, "create trigger ta on a for insert as insert b select * from inserted")
	mustExec(t, s, "create trigger tb on b for insert as print 'b fired'")
	rs := mustExec(t, s, "insert a values (1)")
	if msgs := allMessages(rs); len(msgs) != 1 || msgs[0] != "b fired" {
		t.Errorf("cascade: %v", msgs)
	}
	// Self-recursive trigger must hit the depth limit, not hang.
	mustExec(t, s, "create table r (x int null)")
	mustExec(t, s, "create trigger trr on r for insert as insert r values (1)")
	if _, err := s.ExecScript("insert r values (0)"); err == nil ||
		!strings.Contains(err.Error(), "nesting") {
		t.Errorf("recursion error: %v", err)
	}
}

func TestTriggerSilentOverwriteEndToEnd(t *testing.T) {
	s, _ := newTestSession(t)
	mustExec(t, s, "create table t (a int null)")
	mustExec(t, s, "create trigger t1 on t for insert as print 'one'")
	mustExec(t, s, "create trigger t2 on t for insert as print 'two'")
	rs := mustExec(t, s, "insert t values (1)")
	msgs := allMessages(rs)
	if len(msgs) != 1 || msgs[0] != "two" {
		t.Errorf("overwrite semantics: %v", msgs)
	}
}

func TestStoredProcedures(t *testing.T) {
	s, _ := newTestSession(t)
	mustExec(t, s, "create table stock (symbol varchar(10), price float null)")
	mustExec(t, s, "insert stock values ('IBM', 100) insert stock values ('T', 20)")
	mustExec(t, s, `create procedure p_above @min float as
select symbol from stock where price > @min
print 'checked'`)
	rs := mustExec(t, s, "execute p_above 50")
	rows := lastRows(rs)
	if len(rows) != 1 || rows[0][0].Str() != "IBM" {
		t.Errorf("proc rows: %v", rows)
	}
	if msgs := allMessages(rs); len(msgs) != 1 || msgs[0] != "checked" {
		t.Errorf("proc messages: %v", msgs)
	}
	// Unsupplied parameter is NULL: price > NULL is unknown, no rows.
	rs = mustExec(t, s, "execute p_above")
	if rows := lastRows(rs); len(rows) != 0 {
		t.Errorf("null param rows: %v", rows)
	}
	// Too many arguments rejected.
	if _, err := s.ExecScript("execute p_above 1, 2"); err == nil {
		t.Error("extra args accepted")
	}
	// Unknown proc rejected.
	if _, err := s.ExecScript("execute nope"); err == nil {
		t.Error("missing proc accepted")
	}
}

func TestProcedureInvokedFromTrigger(t *testing.T) {
	// The paper's generated trigger ends with "execute <proc>"; verify the
	// full chain works.
	s, _ := newTestSession(t)
	mustExec(t, s, "create table stock (symbol varchar(10), price float null)")
	mustExec(t, s, "create procedure act as print 'action ran'")
	mustExec(t, s, "create trigger tg on stock for insert as execute act")
	rs := mustExec(t, s, "insert stock values ('IBM', 1)")
	if msgs := allMessages(rs); len(msgs) != 1 || msgs[0] != "action ran" {
		t.Errorf("trigger->proc: %v", msgs)
	}
}

func TestTransactions(t *testing.T) {
	s, _ := newTestSession(t)
	mustExec(t, s, "create table t (a int null)")
	mustExec(t, s, "insert t values (1)")
	mustExec(t, s, "begin tran insert t values (2) insert t values (3)")
	if !s.InTransaction() {
		t.Fatal("not in transaction")
	}
	mustExec(t, s, "rollback")
	rows := lastRows(mustExec(t, s, "select count(*) from t"))
	if rows[0][0].Int() != 1 {
		t.Errorf("rollback left %v rows", rows[0][0])
	}
	mustExec(t, s, "begin tran update t set a = 100 commit")
	rows = lastRows(mustExec(t, s, "select a from t"))
	if rows[0][0].Int() != 100 {
		t.Errorf("commit lost update: %v", rows[0])
	}
	if _, err := s.ExecScript("commit"); err == nil {
		t.Error("commit without begin accepted")
	}
	if _, err := s.ExecScript("rollback"); err == nil {
		t.Error("rollback without begin accepted")
	}
	if _, err := s.ExecScript("begin tran begin tran"); err == nil {
		t.Error("nested begin accepted")
	}
	mustExec(t, s, "rollback")
}

func TestUseAndQualifiedNames(t *testing.T) {
	s, _ := newTestSession(t)
	mustExec(t, s, "create table t (a int null)")
	mustExec(t, s, "insert t values (7)")
	mustExec(t, s, "create database other use other")
	// Fully qualified access from another database.
	rows := lastRows(mustExec(t, s, "select a from db.sharma.t"))
	if len(rows) != 1 || rows[0][0].Int() != 7 {
		t.Errorf("cross-db select: %v", rows)
	}
	if _, err := s.ExecScript("select a from t"); err == nil {
		t.Error("unqualified cross-db select should fail")
	}
	if _, err := s.ExecScript("use missing"); err == nil {
		t.Error("use of missing db accepted")
	}
}

func TestDropStatements(t *testing.T) {
	s, _ := newTestSession(t)
	mustExec(t, s, "create table t (a int null)")
	mustExec(t, s, "create trigger tg on t for insert as print 'x'")
	mustExec(t, s, "create procedure p as print 'y'")
	mustExec(t, s, "drop trigger tg")
	rs := mustExec(t, s, "insert t values (1)")
	if len(allMessages(rs)) != 0 {
		t.Error("dropped trigger fired")
	}
	mustExec(t, s, "drop procedure p")
	if _, err := s.ExecScript("execute p"); err == nil {
		t.Error("dropped proc executed")
	}
	mustExec(t, s, "drop table t")
	if _, err := s.ExecScript("select * from t"); err == nil {
		t.Error("dropped table selectable")
	}
}

func TestErrorPaths(t *testing.T) {
	s, _ := newTestSession(t)
	mustExec(t, s, "create table t (a int not null)")
	for _, bad := range []string{
		"insert t values (null)",                              // NOT NULL violation
		"insert t values (1, 2)",                              // arity
		"insert t (nope) values (1)",                          // unknown column
		"update t set nope = 1",                               // unknown column
		"select nope from t",                                  // unknown column
		"select * from missing",                               // unknown table
		"select a from t where a = 1 / 0",                     // division by zero (runtime, needs a row)
		"create table t (a int)",                              // duplicate table
		"execute t",                                           // not a proc
		"select x.a from t",                                   // unknown alias
		"create trigger g on missing for insert as print 'x'", // missing table
	} {
		if bad == "select a from t where a = 1 / 0" {
			mustExec(t, s, "delete t")
			mustExec(t, s, "insert t values (1)")
		}
		if _, err := s.ExecScript(bad); err == nil {
			t.Errorf("%q succeeded", bad)
		}
	}
}

func TestNullComparisonInWhere(t *testing.T) {
	s, _ := newTestSession(t)
	mustExec(t, s, "create table t (a int null)")
	mustExec(t, s, "insert t values (1) insert t values (null)")
	rows := lastRows(mustExec(t, s, "select a from t where a = 1"))
	if len(rows) != 1 {
		t.Errorf("= with null row: %v", rows)
	}
	rows = lastRows(mustExec(t, s, "select a from t where a <> 1"))
	if len(rows) != 0 {
		t.Errorf("NULL <> 1 must be unknown: %v", rows)
	}
	rows = lastRows(mustExec(t, s, "select a from t where a is null"))
	if len(rows) != 1 {
		t.Errorf("is null: %v", rows)
	}
	rows = lastRows(mustExec(t, s, "select a from t where a is not null"))
	if len(rows) != 1 {
		t.Errorf("is not null: %v", rows)
	}
}

func TestBuiltinsMisc(t *testing.T) {
	s, _ := newTestSession(t)
	rows := lastRows(mustExec(t, s, "select len('hello'), lower('ABC'), upper('abc'), abs(-5), isnull(null, 9)"))
	r := rows[0]
	if r[0].Int() != 5 || r[1].Str() != "abc" || r[2].Str() != "ABC" || r[3].Int() != 5 || r[4].Int() != 9 {
		t.Errorf("builtins: %v", r)
	}
	if _, err := s.ExecScript("select frobnicate(1)"); err == nil {
		t.Error("unknown function accepted")
	}
}

func TestFigure11GeneratedCodeEndToEnd(t *testing.T) {
	// Execute the complete generated artifact of the paper's Example 1 and
	// verify the observable behaviour: shadow rows recorded, vNo bumped,
	// notification sent, action procedure executed.
	s, notes := newTestSession(t)
	mustExec(t, s, `create table stock (symbol varchar(10), price float null)
create table SysPrimitiveEvent (dbName varchar(30) null, userName varchar(30) null, eventName varchar(60) null, tableName varchar(30) null, operation varchar(20) null, timeStamp datetime null, vNo int null)
create table Version (vNo int null)
insert Version values (0)
insert SysPrimitiveEvent values ('db', 'sharma', 'db.sharma.addStk', 'stock', 'insert', getdate(), 0)`)
	mustExec(t, s, `select * into stock_inserted from stock where 1 = 2
alter table stock_inserted add vNo int null`)
	mustExec(t, s, `create procedure t_addStk__Proc as
print 'trigger t_addStk on primitive event addStk occurs'
select * from stock`)
	mustExec(t, s, `create trigger t_addStk on stock for insert as
update SysPrimitiveEvent set vNo = vNo + 1 where eventName = 'db.sharma.addStk'
delete Version
insert Version select vNo from SysPrimitiveEvent where eventName = 'db.sharma.addStk'
insert stock_inserted select i.*, v.vNo from inserted i, Version v
select syb_sendmsg('127.0.0.1', 10006, 'sharma stock insert begin db.sharma.addStk')
execute t_addStk__Proc`)

	rs := mustExec(t, s, "insert stock values ('IBM', 101)")
	if msgs := allMessages(rs); len(msgs) != 1 || !strings.Contains(msgs[0], "addStk occurs") {
		t.Errorf("action message: %v", msgs)
	}
	if len(*notes) != 1 || !strings.Contains((*notes)[0], "begin db.sharma.addStk") {
		t.Errorf("notification: %v", *notes)
	}
	rows := lastRows(mustExec(t, s, "select vNo from SysPrimitiveEvent"))
	if rows[0][0].Int() != 1 {
		t.Errorf("vNo after first insert: %v", rows[0])
	}
	rows = lastRows(mustExec(t, s, "select symbol, vNo from stock_inserted"))
	if len(rows) != 1 || rows[0][0].Str() != "IBM" || rows[0][1].Int() != 1 {
		t.Errorf("shadow row: %v", rows)
	}
	// Second occurrence increments vNo again.
	mustExec(t, s, "insert stock values ('T', 20)")
	rows = lastRows(mustExec(t, s, "select vNo from stock_inserted where symbol = 'T'"))
	if len(rows) != 1 || rows[0][0].Int() != 2 {
		t.Errorf("second occurrence vNo: %v", rows)
	}
}
