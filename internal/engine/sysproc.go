package engine

import (
	"fmt"
	"sort"
	"strings"

	"github.com/activedb/ecaagent/internal/sqlparse"
	"github.com/activedb/ecaagent/internal/sqltypes"
)

// System stored procedures, modeled on the originals the paper's users
// would reach for: sp_help (object inventory / table description),
// sp_helptext (procedure and trigger source), and sp_helpdb (database
// list). They are dispatched by name before user procedures.

// isSystemProc reports whether a procedure call targets a builtin.
func isSystemProc(name string) bool {
	switch strings.ToLower(name) {
	case "sp_help", "sp_helptext", "sp_helpdb":
		return true
	}
	return false
}

// execSystemProc runs a builtin procedure call.
func (s *Session) execSystemProc(st *sqlparse.Execute) (*sqltypes.ResultSet, error) {
	name := strings.ToLower(st.Proc.Name())
	var arg string
	if len(st.Args) > 0 {
		v, err := s.argString(st.Args[0])
		if err != nil {
			return nil, err
		}
		arg = v
	}
	if len(st.Args) > 1 {
		return nil, fmt.Errorf("%s takes at most one argument", name)
	}
	switch name {
	case "sp_help":
		return s.spHelp(arg)
	case "sp_helptext":
		return s.spHelpText(arg)
	case "sp_helpdb":
		return s.spHelpDB()
	default:
		return nil, fmt.Errorf("unknown system procedure %q", name)
	}
}

// argString evaluates a system-proc argument, accepting both quoted
// strings and bare object names (the isql convention: sp_help stock).
func (s *Session) argString(e sqlparse.Expr) (string, error) {
	if cr, ok := e.(*sqlparse.ColumnRef); ok {
		if len(cr.Qualifier.Parts) > 0 {
			return cr.Qualifier.String() + "." + cr.Name, nil
		}
		return cr.Name, nil
	}
	v, err := s.eval(e, nil)
	if err != nil {
		return "", err
	}
	return v.AsString(), nil
}

// spHelp without an argument lists the current database's objects; with
// one it describes the named table's columns.
func (s *Session) spHelp(arg string) (*sqltypes.ResultSet, error) {
	db, err := s.database("")
	if err != nil {
		return nil, err
	}
	if arg == "" {
		names := db.TableNames()
		sort.Strings(names)
		rs := &sqltypes.ResultSet{Schema: sqltypes.NewSchema(
			sqltypes.Column{Name: "Name", Type: sqltypes.VarChar(120)},
			sqltypes.Column{Name: "Object_type", Type: sqltypes.VarChar(20)},
		)}
		for _, n := range names {
			rs.Rows = append(rs.Rows, sqltypes.Row{
				sqltypes.NewString(n), sqltypes.NewString("user table"),
			})
		}
		return rs, nil
	}
	parts := strings.Split(arg, ".")
	name := sqlparse.ObjectName{Parts: parts}
	tbl, err := s.resolveTable(name)
	if err != nil {
		return nil, err
	}
	schema := tbl.Schema()
	rs := &sqltypes.ResultSet{Schema: sqltypes.NewSchema(
		sqltypes.Column{Name: "Column_name", Type: sqltypes.VarChar(120)},
		sqltypes.Column{Name: "Type", Type: sqltypes.VarChar(20)},
		sqltypes.Column{Name: "Length", Type: sqltypes.Int},
		sqltypes.Column{Name: "Nulls", Type: sqltypes.VarChar(10)},
	)}
	for _, c := range schema.Columns {
		nulls := "not null"
		if c.Nullable {
			nulls = "NULL"
		}
		rs.Rows = append(rs.Rows, sqltypes.Row{
			sqltypes.NewString(c.Name),
			sqltypes.NewString(c.Type.Kind.String()),
			sqltypes.NewInt(int64(c.Type.Length)),
			sqltypes.NewString(nulls),
		})
	}
	return rs, nil
}

// spHelpText prints the stored source of a procedure or trigger, as the
// original reads syscomments.
func (s *Session) spHelpText(arg string) (*sqltypes.ResultSet, error) {
	if arg == "" {
		return nil, fmt.Errorf("sp_helptext requires an object name")
	}
	parts := strings.Split(arg, ".")
	name := sqlparse.ObjectName{Parts: parts}
	db, err := s.database(name.Database())
	if err != nil {
		return nil, err
	}
	if p, err := db.Procedure(name.Owner(), name.Name(), s.user); err == nil {
		return &sqltypes.ResultSet{Messages: []string{p.RawSQL}}, nil
	}
	if tr, err := db.Trigger(name.Owner(), name.Name(), s.user); err == nil {
		return &sqltypes.ResultSet{Messages: []string{tr.RawSQL}}, nil
	}
	return nil, fmt.Errorf("no procedure or trigger named %s", arg)
}

// spHelpDB lists databases.
func (s *Session) spHelpDB() (*sqltypes.ResultSet, error) {
	names := s.eng.cat.DatabaseNames()
	sort.Strings(names)
	rs := &sqltypes.ResultSet{Schema: sqltypes.NewSchema(
		sqltypes.Column{Name: "name", Type: sqltypes.VarChar(60)},
	)}
	for _, n := range names {
		rs.Rows = append(rs.Rows, sqltypes.Row{sqltypes.NewString(n)})
	}
	return rs, nil
}
