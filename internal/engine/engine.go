// Package engine executes parsed SQL against the catalog. It is the heart
// of the SQL server substrate: DDL, DML with native trigger firing
// (including the inserted/deleted pseudo-tables), stored procedures,
// transactions with rollback, and the syb_sendmsg notification builtin the
// ECA agent's generated triggers use to signal primitive events.
package engine

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"github.com/activedb/ecaagent/internal/catalog"
	"github.com/activedb/ecaagent/internal/sqlparse"
	"github.com/activedb/ecaagent/internal/sqltypes"
	"github.com/activedb/ecaagent/internal/storage"
)

// Notifier delivers a syb_sendmsg datagram. The default implementation
// sends a UDP packet, exactly like the extended stored procedure in the
// original server; tests and the in-process agent configuration substitute
// a direct function call.
type Notifier func(host string, port int, msg string) error

// UDPNotifier returns the production Notifier: one UDP datagram per call.
func UDPNotifier() Notifier {
	return func(host string, port int, msg string) error {
		conn, err := net.Dial("udp", net.JoinHostPort(host, fmt.Sprintf("%d", port)))
		if err != nil {
			return err
		}
		defer conn.Close()
		_, err = conn.Write([]byte(msg))
		return err
	}
}

// maxTriggerDepth bounds trigger nesting, matching the original server's
// nested-trigger limit of 16.
const maxTriggerDepth = 16

// Engine executes SQL against a catalog. It is safe for concurrent use by
// multiple sessions.
type Engine struct {
	cat      *catalog.Catalog
	mu       sync.RWMutex
	notifier Notifier
	// now is the clock used by getdate(); replaceable in tests.
	now func() time.Time
}

// New returns an engine over the given catalog with UDP notification.
func New(cat *catalog.Catalog) *Engine {
	return &Engine{cat: cat, notifier: UDPNotifier(), now: time.Now}
}

// Catalog exposes the engine's catalog (used by the server for snapshots).
func (e *Engine) Catalog() *catalog.Catalog { return e.cat }

// SetNotifier replaces the syb_sendmsg transport.
func (e *Engine) SetNotifier(n Notifier) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.notifier = n
}

func (e *Engine) notify(host string, port int, msg string) error {
	e.mu.RLock()
	n := e.notifier
	e.mu.RUnlock()
	if n == nil {
		return nil
	}
	return n(host, port, msg)
}

// SetClock replaces the getdate() clock (tests only).
func (e *Engine) SetClock(now func() time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.now = now
}

func (e *Engine) clock() time.Time {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.now()
}

// Session is one client's execution context: current database, user
// identity, trigger nesting state and any open transaction. A Session must
// be used from one goroutine at a time.
type Session struct {
	eng  *Engine
	db   string
	user string

	// trigCtx is the stack of trigger execution contexts providing the
	// inserted/deleted pseudo-tables.
	trigCtx []*triggerContext
	// vars holds procedure parameters during procedure execution.
	vars map[string]sqltypes.Value
	// txn is the open explicit transaction, if any.
	txn *transaction
	// extra buffers result sets produced by triggers and procedures fired
	// from within a statement; ExecBatch interleaves them after the
	// triggering statement's own result, preserving wire order.
	extra []*sqltypes.ResultSet
	// procDepth guards against runaway procedure recursion.
	procDepth int
}

type triggerContext struct {
	inserted *storage.Table
	deleted  *storage.Table
}

// NewSession creates a session for the given user, starting in master.
func (e *Engine) NewSession(user string) *Session {
	if user == "" {
		user = catalog.DefaultOwner
	}
	return &Session{eng: e, db: "master", user: user}
}

// User returns the session's login name.
func (s *Session) User() string { return s.user }

// DatabaseName returns the session's current database.
func (s *Session) DatabaseName() string { return s.db }

// Use switches the current database.
func (s *Session) Use(db string) error {
	if _, err := s.eng.cat.Database(db); err != nil {
		return err
	}
	s.db = db
	return nil
}

// ExecScript splits src on GO lines and executes every batch, returning
// one result per statement.
func (s *Session) ExecScript(src string) ([]*sqltypes.ResultSet, error) {
	var out []*sqltypes.ResultSet
	for _, batch := range sqlparse.SplitBatches(src) {
		results, err := s.ExecBatch(batch)
		out = append(out, results...)
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// ExecBatch parses and executes one batch, returning one result per
// statement. On error, the results of the statements that ran are
// returned along with the error.
func (s *Session) ExecBatch(src string) ([]*sqltypes.ResultSet, error) {
	stmts, err := sqlparse.ParseBatch(src)
	if err != nil {
		return nil, err
	}
	var out []*sqltypes.ResultSet
	for _, st := range stmts {
		rs, err := s.ExecStmt(st)
		if rs != nil {
			out = append(out, rs)
		}
		out = append(out, s.drainExtra()...)
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// drainExtra removes and returns the buffered trigger/procedure output.
func (s *Session) drainExtra() []*sqltypes.ResultSet {
	out := s.extra
	s.extra = nil
	return out
}

// ExecStmt executes one statement.
func (s *Session) ExecStmt(st sqlparse.Statement) (*sqltypes.ResultSet, error) {
	switch st := st.(type) {
	case *sqlparse.CreateDatabase:
		_, err := s.eng.cat.CreateDatabase(st.Name)
		return &sqltypes.ResultSet{}, err
	case *sqlparse.UseDatabase:
		return &sqltypes.ResultSet{}, s.Use(st.Name)
	case *sqlparse.CreateTable:
		return s.execCreateTable(st)
	case *sqlparse.DropTable:
		return s.execDropTable(st)
	case *sqlparse.AlterTableAdd:
		return s.execAlterTableAdd(st)
	case *sqlparse.Insert:
		return s.execInsert(st)
	case *sqlparse.Select:
		return s.execSelectStmt(st)
	case *sqlparse.Update:
		return s.execUpdate(st)
	case *sqlparse.Delete:
		return s.execDelete(st)
	case *sqlparse.CreateTrigger:
		return s.execCreateTrigger(st)
	case *sqlparse.DropTrigger:
		return s.execDropTrigger(st)
	case *sqlparse.CreateProcedure:
		return s.execCreateProcedure(st)
	case *sqlparse.DropProcedure:
		return s.execDropProcedure(st)
	case *sqlparse.Execute:
		return s.execProcedureCall(st)
	case *sqlparse.Print:
		return s.execPrint(st)
	case *sqlparse.BeginTran:
		return &sqltypes.ResultSet{}, s.beginTran()
	case *sqlparse.CommitTran:
		return &sqltypes.ResultSet{}, s.commitTran()
	case *sqlparse.RollbackTran:
		return &sqltypes.ResultSet{}, s.rollbackTran()
	default:
		return nil, fmt.Errorf("engine: unsupported statement %T", st)
	}
}

// database returns the named database, or the session's current one.
func (s *Session) database(name string) (*catalog.Database, error) {
	if name == "" {
		name = s.db
	}
	return s.eng.cat.Database(name)
}

// resolveTable resolves a table reference, honouring the inserted/deleted
// pseudo-tables while a trigger is running.
func (s *Session) resolveTable(name sqlparse.ObjectName) (*storage.Table, error) {
	if !name.IsQualified() && len(s.trigCtx) > 0 {
		ctx := s.trigCtx[len(s.trigCtx)-1]
		switch strings.ToLower(name.Name()) {
		case "inserted":
			if ctx.inserted != nil {
				return ctx.inserted, nil
			}
		case "deleted":
			if ctx.deleted != nil {
				return ctx.deleted, nil
			}
		}
	}
	db, err := s.database(name.Database())
	if err != nil {
		return nil, err
	}
	return db.Table(name.Owner(), name.Name(), s.user)
}

// ownerFor returns the owner component to record for a newly created
// object: the explicit qualifier if given, else the session user.
func (s *Session) ownerFor(name sqlparse.ObjectName) string {
	if o := name.Owner(); o != "" {
		return o
	}
	return s.user
}

func (s *Session) execCreateTable(st *sqlparse.CreateTable) (*sqltypes.ResultSet, error) {
	db, err := s.database(st.Name.Database())
	if err != nil {
		return nil, err
	}
	schema := &sqltypes.Schema{}
	for _, cd := range st.Columns {
		// Sybase defaults to NOT NULL when no null spec is given.
		if err := schema.AddColumn(sqltypes.Column{Name: cd.Name, Type: cd.Type, Nullable: cd.Nullable}); err != nil {
			return nil, err
		}
	}
	_, err = db.CreateTable(s.ownerFor(st.Name), st.Name.Name(), schema)
	return &sqltypes.ResultSet{}, err
}

func (s *Session) execDropTable(st *sqlparse.DropTable) (*sqltypes.ResultSet, error) {
	db, err := s.database(st.Name.Database())
	if err != nil {
		return nil, err
	}
	return &sqltypes.ResultSet{}, db.DropTable(st.Name.Owner(), st.Name.Name(), s.user)
}

func (s *Session) execAlterTableAdd(st *sqlparse.AlterTableAdd) (*sqltypes.ResultSet, error) {
	tbl, err := s.resolveTable(st.Table)
	if err != nil {
		return nil, err
	}
	col := sqltypes.Column{Name: st.Column.Name, Type: st.Column.Type, Nullable: st.Column.Nullable}
	return &sqltypes.ResultSet{}, tbl.AddColumn(col)
}

func (s *Session) execCreateTrigger(st *sqlparse.CreateTrigger) (*sqltypes.ResultSet, error) {
	db, err := s.database(st.Name.Database())
	if err != nil {
		return nil, err
	}
	tr := &catalog.Trigger{
		Name:      st.Name.Name(),
		Owner:     s.ownerFor(st.Name),
		Table:     st.Table.Name(),
		Operation: st.Operation,
		Body:      st.Body,
		RawSQL:    st.SQL(),
	}
	return &sqltypes.ResultSet{}, db.CreateTrigger(tr, s.user)
}

func (s *Session) execDropTrigger(st *sqlparse.DropTrigger) (*sqltypes.ResultSet, error) {
	db, err := s.database(st.Name.Database())
	if err != nil {
		return nil, err
	}
	return &sqltypes.ResultSet{}, db.DropTrigger(st.Name.Owner(), st.Name.Name(), s.user)
}

func (s *Session) execCreateProcedure(st *sqlparse.CreateProcedure) (*sqltypes.ResultSet, error) {
	db, err := s.database(st.Name.Database())
	if err != nil {
		return nil, err
	}
	p := &catalog.Procedure{
		Name:   st.Name.Name(),
		Owner:  s.ownerFor(st.Name),
		Params: st.Params,
		Body:   st.Body,
		RawSQL: st.SQL(),
	}
	return &sqltypes.ResultSet{}, db.CreateProcedure(p)
}

func (s *Session) execDropProcedure(st *sqlparse.DropProcedure) (*sqltypes.ResultSet, error) {
	db, err := s.database(st.Name.Database())
	if err != nil {
		return nil, err
	}
	return &sqltypes.ResultSet{}, db.DropProcedure(st.Name.Owner(), st.Name.Name(), s.user)
}

func (s *Session) execPrint(st *sqlparse.Print) (*sqltypes.ResultSet, error) {
	v, err := s.eval(st.Value, nil)
	if err != nil {
		return nil, err
	}
	return &sqltypes.ResultSet{Messages: []string{v.AsString()}}, nil
}
