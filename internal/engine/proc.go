package engine

import (
	"fmt"
	"strings"

	"github.com/activedb/ecaagent/internal/sqlparse"
	"github.com/activedb/ecaagent/internal/sqltypes"
)

// execProcedureCall runs EXECUTE proc arg, ... — the mechanism the ECA
// agent's Action Handler uses to invoke rule actions inside the server.
func (s *Session) execProcedureCall(st *sqlparse.Execute) (*sqltypes.ResultSet, error) {
	if !st.Proc.IsQualified() && isSystemProc(st.Proc.Name()) {
		return s.execSystemProc(st)
	}
	dbName := st.Proc.Database()
	db, err := s.database(dbName)
	if err != nil {
		return nil, err
	}
	proc, err := db.Procedure(st.Proc.Owner(), st.Proc.Name(), s.user)
	if err != nil {
		return nil, err
	}
	if s.procDepth >= maxTriggerDepth {
		return nil, fmt.Errorf("procedure nesting exceeds %d levels", maxTriggerDepth)
	}
	if len(st.Args) > len(proc.Params) {
		return nil, fmt.Errorf("procedure %s takes %d parameters, got %d arguments",
			proc.Name, len(proc.Params), len(st.Args))
	}

	// Bind arguments positionally, converting to the declared types.
	// Unsupplied parameters default to NULL.
	vars := make(map[string]sqltypes.Value, len(proc.Params))
	for i, p := range proc.Params {
		v := sqltypes.Null
		if i < len(st.Args) {
			raw, err := s.eval(st.Args[i], nil)
			if err != nil {
				return nil, err
			}
			v, err = raw.Convert(p.Type)
			if err != nil {
				return nil, fmt.Errorf("argument %d of %s: %v", i+1, proc.Name, err)
			}
		}
		vars[strings.ToLower(p.Name)] = v
	}

	// Procedures execute in their home database with their own parameter
	// scope; the caller's context is restored afterwards.
	savedVars, savedDB := s.vars, s.db
	s.vars = vars
	if dbName != "" {
		s.db = dbName
	}
	s.procDepth++
	defer func() {
		s.vars, s.db = savedVars, savedDB
		s.procDepth--
	}()

	out := &sqltypes.ResultSet{}
	for _, bodyStmt := range proc.Body {
		rs, err := s.ExecStmt(bodyStmt)
		if rs != nil && (rs.Schema != nil || len(rs.Messages) > 0) {
			s.extra = append(s.extra, rs)
		}
		if rs != nil {
			out.RowsAffected += rs.RowsAffected
		}
		if err != nil {
			return out, fmt.Errorf("procedure %s: %v", proc.Name, err)
		}
	}
	return out, nil
}
