package engine

import (
	"fmt"
	"strings"

	"github.com/activedb/ecaagent/internal/sqlparse"
	"github.com/activedb/ecaagent/internal/sqltypes"
)

// frame binds one table's current row during evaluation. qualifiers holds
// every lowercased spelling that may reference the frame: its alias, bare
// table name, owner.table and db.owner.table.
type frame struct {
	qualifiers []string
	schema     *sqltypes.Schema
	row        sqltypes.Row
}

func (f *frame) matches(q string) bool {
	for _, name := range f.qualifiers {
		if name == q {
			return true
		}
	}
	return false
}

// newFrame builds a frame for a table reference.
func newFrame(ref sqlparse.TableRef, schema *sqltypes.Schema, currentDB string) *frame {
	var quals []string
	if ref.Alias != "" {
		quals = append(quals, strings.ToLower(ref.Alias))
	} else {
		name := ref.Name
		quals = append(quals, strings.ToLower(name.Name()))
		if o := name.Owner(); o != "" {
			quals = append(quals, strings.ToLower(o+"."+name.Name()))
		}
		if d := name.Database(); d != "" {
			quals = append(quals, strings.ToLower(d+"."+name.Owner()+"."+name.Name()))
		} else if name.Owner() != "" && currentDB != "" {
			quals = append(quals, strings.ToLower(currentDB+"."+name.Owner()+"."+name.Name()))
		}
	}
	return &frame{qualifiers: quals, schema: schema}
}

// eval evaluates an expression. frames may be nil for standalone
// expressions (INSERT VALUES, PRINT).
func (s *Session) eval(e sqlparse.Expr, frames []*frame) (sqltypes.Value, error) {
	switch e := e.(type) {
	case *sqlparse.Literal:
		return e.Value, nil
	case *sqlparse.ColumnRef:
		return s.evalColumnRef(e, frames)
	case *sqlparse.BinaryExpr:
		return s.evalBinary(e, frames)
	case *sqlparse.UnaryExpr:
		return s.evalUnary(e, frames)
	case *sqlparse.FuncCall:
		return s.evalFunc(e, frames)
	case *sqlparse.IsNull:
		v, err := s.eval(e.E, frames)
		if err != nil {
			return sqltypes.Null, err
		}
		return sqltypes.NewBit(v.IsNull() != e.Negate), nil
	case *sqlparse.InList:
		return s.evalInList(e, frames)
	default:
		return sqltypes.Null, fmt.Errorf("engine: unsupported expression %T", e)
	}
}

func (s *Session) evalColumnRef(e *sqlparse.ColumnRef, frames []*frame) (sqltypes.Value, error) {
	// Procedure parameter / local variable.
	if strings.HasPrefix(e.Name, "@") {
		if s.vars != nil {
			if v, ok := s.vars[strings.ToLower(e.Name)]; ok {
				return v, nil
			}
		}
		return sqltypes.Null, fmt.Errorf("variable %s is not declared", e.Name)
	}
	col := strings.ToLower(e.Name)
	if len(e.Qualifier.Parts) > 0 {
		q := strings.ToLower(e.Qualifier.String())
		for _, f := range frames {
			if !f.matches(q) {
				continue
			}
			if i := f.schema.Index(col); i >= 0 {
				return f.row[i], nil
			}
			return sqltypes.Null, fmt.Errorf("column %s not found in %s", e.Name, e.Qualifier)
		}
		return sqltypes.Null, fmt.Errorf("unknown table or alias %q", e.Qualifier)
	}
	// Unqualified: must match exactly one frame.
	var found sqltypes.Value
	matches := 0
	for _, f := range frames {
		if i := f.schema.Index(col); i >= 0 {
			found = f.row[i]
			matches++
		}
	}
	switch matches {
	case 0:
		return sqltypes.Null, fmt.Errorf("unknown column %q", e.Name)
	case 1:
		return found, nil
	default:
		return sqltypes.Null, fmt.Errorf("ambiguous column %q", e.Name)
	}
}

func (s *Session) evalBinary(e *sqlparse.BinaryExpr, frames []*frame) (sqltypes.Value, error) {
	switch e.Op {
	case sqlparse.OpAnd, sqlparse.OpOr:
		return s.evalLogical(e, frames)
	}
	l, err := s.eval(e.L, frames)
	if err != nil {
		return sqltypes.Null, err
	}
	r, err := s.eval(e.R, frames)
	if err != nil {
		return sqltypes.Null, err
	}
	switch e.Op {
	case sqlparse.OpAdd:
		return sqltypes.Arith('+', l, r)
	case sqlparse.OpSub:
		return sqltypes.Arith('-', l, r)
	case sqlparse.OpMul:
		return sqltypes.Arith('*', l, r)
	case sqlparse.OpDiv:
		return sqltypes.Arith('/', l, r)
	case sqlparse.OpMod:
		return sqltypes.Arith('%', l, r)
	case sqlparse.OpLike:
		if l.IsNull() || r.IsNull() {
			return sqltypes.Null, nil
		}
		return sqltypes.NewBit(sqltypes.Like(l.AsString(), r.AsString())), nil
	case sqlparse.OpEq, sqlparse.OpNe, sqlparse.OpLt, sqlparse.OpLe, sqlparse.OpGt, sqlparse.OpGe:
		c, known := l.Compare(r)
		if !known {
			return sqltypes.Null, nil // SQL unknown
		}
		var res bool
		switch e.Op {
		case sqlparse.OpEq:
			res = c == 0
		case sqlparse.OpNe:
			res = c != 0
		case sqlparse.OpLt:
			res = c < 0
		case sqlparse.OpLe:
			res = c <= 0
		case sqlparse.OpGt:
			res = c > 0
		case sqlparse.OpGe:
			res = c >= 0
		}
		return sqltypes.NewBit(res), nil
	default:
		return sqltypes.Null, fmt.Errorf("engine: unsupported operator %q", e.Op)
	}
}

// evalLogical implements AND/OR with three-valued logic and shortcuts.
func (s *Session) evalLogical(e *sqlparse.BinaryExpr, frames []*frame) (sqltypes.Value, error) {
	l, err := s.eval(e.L, frames)
	if err != nil {
		return sqltypes.Null, err
	}
	lb, lknown := l.AsBool()
	if e.Op == sqlparse.OpAnd && lknown && !lb {
		return sqltypes.NewBit(false), nil
	}
	if e.Op == sqlparse.OpOr && lknown && lb {
		return sqltypes.NewBit(true), nil
	}
	r, err := s.eval(e.R, frames)
	if err != nil {
		return sqltypes.Null, err
	}
	rb, rknown := r.AsBool()
	if e.Op == sqlparse.OpAnd {
		switch {
		case rknown && !rb:
			return sqltypes.NewBit(false), nil
		case lknown && rknown:
			return sqltypes.NewBit(lb && rb), nil
		default:
			return sqltypes.Null, nil
		}
	}
	switch {
	case rknown && rb:
		return sqltypes.NewBit(true), nil
	case lknown && rknown:
		return sqltypes.NewBit(lb || rb), nil
	default:
		return sqltypes.Null, nil
	}
}

func (s *Session) evalUnary(e *sqlparse.UnaryExpr, frames []*frame) (sqltypes.Value, error) {
	v, err := s.eval(e.E, frames)
	if err != nil {
		return sqltypes.Null, err
	}
	switch e.Op {
	case "not":
		b, known := v.AsBool()
		if !known {
			return sqltypes.Null, nil
		}
		return sqltypes.NewBit(!b), nil
	case "-":
		switch v.Kind() {
		case sqltypes.KindInt, sqltypes.KindBit:
			return sqltypes.NewInt(-v.Int()), nil
		case sqltypes.KindFloat:
			return sqltypes.NewFloat(-v.Float()), nil
		case sqltypes.KindNull:
			return sqltypes.Null, nil
		default:
			return sqltypes.Null, fmt.Errorf("cannot negate %s", v.Kind())
		}
	default:
		return sqltypes.Null, fmt.Errorf("engine: unsupported unary %q", e.Op)
	}
}

func (s *Session) evalInList(e *sqlparse.InList, frames []*frame) (sqltypes.Value, error) {
	v, err := s.eval(e.E, frames)
	if err != nil {
		return sqltypes.Null, err
	}
	if v.IsNull() {
		return sqltypes.Null, nil
	}
	sawUnknown := false
	for _, item := range e.List {
		iv, err := s.eval(item, frames)
		if err != nil {
			return sqltypes.Null, err
		}
		c, known := v.Compare(iv)
		if !known {
			sawUnknown = true
			continue
		}
		if c == 0 {
			return sqltypes.NewBit(!e.Negate), nil
		}
	}
	if sawUnknown {
		return sqltypes.Null, nil
	}
	return sqltypes.NewBit(e.Negate), nil
}

// aggregateFuncs are handled by the SELECT executor, not here.
var aggregateFuncs = map[string]bool{
	"count": true, "sum": true, "avg": true, "min": true, "max": true,
}

func (s *Session) evalFunc(e *sqlparse.FuncCall, frames []*frame) (sqltypes.Value, error) {
	if aggregateFuncs[e.Name] {
		return sqltypes.Null, fmt.Errorf("aggregate %s() is not valid here", e.Name)
	}
	args := make([]sqltypes.Value, len(e.Args))
	for i, a := range e.Args {
		v, err := s.eval(a, frames)
		if err != nil {
			return sqltypes.Null, err
		}
		args[i] = v
	}
	switch e.Name {
	case "getdate":
		return sqltypes.NewDateTime(s.eng.clock()), nil
	case "user_name", "suser_name":
		return sqltypes.NewString(s.user), nil
	case "db_name":
		return sqltypes.NewString(s.db), nil
	case "len", "char_length", "datalength":
		if err := arity(e, args, 1); err != nil {
			return sqltypes.Null, err
		}
		if args[0].IsNull() {
			return sqltypes.Null, nil
		}
		return sqltypes.NewInt(int64(len(args[0].AsString()))), nil
	case "lower":
		if err := arity(e, args, 1); err != nil {
			return sqltypes.Null, err
		}
		if args[0].IsNull() {
			return sqltypes.Null, nil
		}
		return sqltypes.NewString(strings.ToLower(args[0].AsString())), nil
	case "upper":
		if err := arity(e, args, 1); err != nil {
			return sqltypes.Null, err
		}
		if args[0].IsNull() {
			return sqltypes.Null, nil
		}
		return sqltypes.NewString(strings.ToUpper(args[0].AsString())), nil
	case "abs":
		if err := arity(e, args, 1); err != nil {
			return sqltypes.Null, err
		}
		switch args[0].Kind() {
		case sqltypes.KindInt, sqltypes.KindBit:
			n := args[0].Int()
			if n < 0 {
				n = -n
			}
			return sqltypes.NewInt(n), nil
		case sqltypes.KindFloat:
			f := args[0].Float()
			if f < 0 {
				f = -f
			}
			return sqltypes.NewFloat(f), nil
		case sqltypes.KindNull:
			return sqltypes.Null, nil
		default:
			return sqltypes.Null, fmt.Errorf("abs() on %s", args[0].Kind())
		}
	case "isnull":
		// isnull(expr, replacement), the Sybase COALESCE-of-two.
		if err := arity(e, args, 2); err != nil {
			return sqltypes.Null, err
		}
		if args[0].IsNull() {
			return args[1], nil
		}
		return args[0], nil
	case "convert":
		return sqltypes.Null, fmt.Errorf("convert() requires a type name; use cast-compatible literals instead")
	case "syb_sendmsg":
		return s.evalSendMsg(e, args)
	default:
		return sqltypes.Null, fmt.Errorf("unknown function %q", e.Name)
	}
}

// evalSendMsg implements syb_sendmsg(ip, port, message): send a UDP
// datagram and return 0, matching the Sybase built-in used in Figure 11 of
// the paper to notify the ECA agent's Event Notifier.
func (s *Session) evalSendMsg(e *sqlparse.FuncCall, args []sqltypes.Value) (sqltypes.Value, error) {
	if err := arity(e, args, 3); err != nil {
		return sqltypes.Null, err
	}
	host := args[0].AsString()
	port, ok := args[1].AsInt()
	if !ok {
		return sqltypes.Null, fmt.Errorf("syb_sendmsg: bad port %v", args[1])
	}
	msg := args[2].AsString()
	if err := s.eng.notify(host, int(port), msg); err != nil {
		// As in the original, a lost datagram does not abort the
		// transaction; report failure through the return value.
		return sqltypes.NewInt(1), nil
	}
	return sqltypes.NewInt(0), nil
}

func arity(e *sqlparse.FuncCall, args []sqltypes.Value, n int) error {
	if len(args) != n {
		return fmt.Errorf("%s() takes %d arguments, got %d", e.Name, n, len(args))
	}
	return nil
}

// validateColumns checks that every column reference in e resolves against
// the given frames, so that unknown columns are reported even when a query
// matches zero rows (as the original server does at compile time).
func (s *Session) validateColumns(e sqlparse.Expr, frames []*frame) error {
	switch e := e.(type) {
	case nil, *sqlparse.Literal:
		return nil
	case *sqlparse.ColumnRef:
		if strings.HasPrefix(e.Name, "@") {
			return nil // variables are checked at evaluation time
		}
		col := strings.ToLower(e.Name)
		if len(e.Qualifier.Parts) > 0 {
			q := strings.ToLower(e.Qualifier.String())
			for _, f := range frames {
				if f.matches(q) {
					if f.schema.Index(col) < 0 {
						return fmt.Errorf("column %s not found in %s", e.Name, e.Qualifier)
					}
					return nil
				}
			}
			return fmt.Errorf("unknown table or alias %q", e.Qualifier)
		}
		matches := 0
		for _, f := range frames {
			if f.schema.Index(col) >= 0 {
				matches++
			}
		}
		switch matches {
		case 0:
			return fmt.Errorf("unknown column %q", e.Name)
		case 1:
			return nil
		default:
			return fmt.Errorf("ambiguous column %q", e.Name)
		}
	case *sqlparse.BinaryExpr:
		if err := s.validateColumns(e.L, frames); err != nil {
			return err
		}
		return s.validateColumns(e.R, frames)
	case *sqlparse.UnaryExpr:
		return s.validateColumns(e.E, frames)
	case *sqlparse.FuncCall:
		for _, a := range e.Args {
			if err := s.validateColumns(a, frames); err != nil {
				return err
			}
		}
		return nil
	case *sqlparse.IsNull:
		return s.validateColumns(e.E, frames)
	case *sqlparse.InList:
		if err := s.validateColumns(e.E, frames); err != nil {
			return err
		}
		for _, x := range e.List {
			if err := s.validateColumns(x, frames); err != nil {
				return err
			}
		}
		return nil
	default:
		return nil
	}
}

// truthy evaluates a predicate expression to a definite boolean (SQL
// unknown counts as false, as in WHERE).
func (s *Session) truthy(e sqlparse.Expr, frames []*frame) (bool, error) {
	if e == nil {
		return true, nil
	}
	v, err := s.eval(e, frames)
	if err != nil {
		return false, err
	}
	b, known := v.AsBool()
	return known && b, nil
}
