package faults

import (
	"testing"
)

func TestCrashSetTripsOnNthHit(t *testing.T) {
	c := NewCrashSet()
	c.Arm("wal.append", 3)
	c.Hit("wal.append")
	c.Hit("wal.append")
	c.Hit("other.point") // unarmed points never trip
	func() {
		defer func() {
			point, ok := IsCrash(recover())
			if !ok || point != "wal.append" {
				t.Fatalf("expected crash at wal.append, got %q ok=%v", point, ok)
			}
		}()
		c.Hit("wal.append")
		t.Fatal("third hit did not trip")
	}()
	if c.Tripped() != "wal.append" {
		t.Fatalf("Tripped = %q", c.Tripped())
	}
	// After the first trip every point disarms.
	c.Arm("other.point", 1)
	c.Hit("other.point")
	if got := c.Hits("wal.append"); got != 3 {
		t.Fatalf("Hits = %d, want 3", got)
	}
}

func TestCrashSetNilIsInert(t *testing.T) {
	var c *CrashSet
	c.Hit("anything")
	if c.Tripped() != "" || c.Hits("anything") != 0 {
		t.Fatal("nil CrashSet not inert")
	}
}

func TestRecoverSwallowsOnlyCrashes(t *testing.T) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer Recover()
		c := NewCrashSet()
		c.Arm("p", 1)
		c.Hit("p")
	}()
	<-done // would have crashed the test process if not swallowed

	defer func() {
		if r := recover(); r != "real panic" {
			t.Fatalf("Recover swallowed a real panic: %v", r)
		}
	}()
	func() {
		defer Recover()
		panic("real panic")
	}()
}

func TestCrashDirDurability(t *testing.T) {
	d := NewCrashDir(1)
	f, err := d.Create("wal-1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("synced|")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("unsynced-tail-that-may-tear")); err != nil {
		t.Fatal(err)
	}

	// Live reads see everything (same-process page cache).
	if b, _ := d.ReadFile("wal-1"); string(b) != "synced|unsynced-tail-that-may-tear" {
		t.Fatalf("live read = %q", b)
	}

	d.Crash()
	if _, err := f.Write([]byte("x")); err == nil {
		t.Fatal("write after crash succeeded")
	}
	if _, err := d.Create("other"); err == nil {
		t.Fatal("create after crash succeeded")
	}
	d.Restart()
	b, err := d.ReadFile("wal-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(b) < len("synced|") || string(b[:7]) != "synced|" {
		t.Fatalf("synced prefix lost: %q", b)
	}
	if len(b) > len("synced|unsynced-tail-that-may-tear") {
		t.Fatalf("grew bytes from nowhere: %q", b)
	}
}

func TestCrashDirRenamePublish(t *testing.T) {
	d := NewCrashDir(7)
	f, _ := d.Create("ckpt-2.tmp")
	f.Write([]byte("checkpoint"))
	f.Sync()
	f.Close()
	if err := d.Rename("ckpt-2.tmp", "ckpt-2"); err != nil {
		t.Fatal(err)
	}
	d.Crash()
	d.Restart()
	if b, err := d.ReadFile("ckpt-2"); err != nil || string(b) != "checkpoint" {
		t.Fatalf("published checkpoint lost: %q, %v", b, err)
	}
	if _, err := d.ReadFile("ckpt-2.tmp"); err == nil {
		t.Fatal("tmp survived rename")
	}
	names, _ := d.List()
	if len(names) != 1 || names[0] != "ckpt-2" {
		t.Fatalf("List = %v", names)
	}
}

func TestCrashDirTornTailIsPrefix(t *testing.T) {
	// Across seeds, whatever survives of the unsynced region must be a
	// prefix — never reordered or interior-dropped bytes.
	payload := "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	for seed := int64(0); seed < 20; seed++ {
		d := NewCrashDir(seed)
		f, _ := d.Create("w")
		f.Write([]byte(payload))
		d.Crash()
		d.Restart()
		b, err := d.ReadFile("w")
		if err != nil {
			t.Fatal(err)
		}
		if string(b) != payload[:len(b)] {
			t.Fatalf("seed %d: surviving bytes %q are not a prefix", seed, b)
		}
	}
}
