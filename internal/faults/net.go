package faults

import (
	"math/rand"
	"sync"
)

// PipeConfig tunes a lossy notification path. Rates are probabilities in
// [0, 1]; the seeded generator makes every run reproducible.
type PipeConfig struct {
	Seed         int64
	DropRate     float64 // fraction of messages silently discarded
	DupRate      float64 // fraction of delivered messages sent twice
	ReorderEvery int     // shuffle delivery order within windows of this size (0/1 = in order)
}

// Pipe models the UDP hop between the server's syb_sendmsg and the agent's
// Event Notifier: messages can be dropped, duplicated and reordered, but
// never corrupted in flight (the datagram either arrives whole or not at
// all). Hook its Send in front of Agent.Deliver to make the best-effort
// seam explicit and testable.
type Pipe struct {
	cfg     PipeConfig
	deliver func(msg string)

	mu      sync.Mutex
	rng     *rand.Rand
	window  []string
	dropped int
	duped   int
}

// NewPipe returns a pipe that forwards surviving messages to deliver.
func NewPipe(cfg PipeConfig, deliver func(msg string)) *Pipe {
	return &Pipe{cfg: cfg, deliver: deliver, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Send puts one message through the faulty path.
func (p *Pipe) Send(msg string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.rng.Float64() < p.cfg.DropRate {
		p.dropped++
		return
	}
	copies := 1
	if p.rng.Float64() < p.cfg.DupRate {
		copies = 2
		p.duped++
	}
	for i := 0; i < copies; i++ {
		p.window = append(p.window, msg)
	}
	if p.cfg.ReorderEvery > 1 && len(p.window) < p.cfg.ReorderEvery {
		return // hold for the reorder window
	}
	p.flushLocked()
}

// Flush delivers anything still held in the reorder window.
func (p *Pipe) Flush() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.flushLocked()
}

func (p *Pipe) flushLocked() {
	if p.cfg.ReorderEvery > 1 {
		p.rng.Shuffle(len(p.window), func(i, j int) {
			p.window[i], p.window[j] = p.window[j], p.window[i]
		})
	}
	for _, m := range p.window {
		p.deliver(m)
	}
	p.window = p.window[:0]
}

// Dropped reports how many messages the pipe discarded.
func (p *Pipe) Dropped() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dropped
}

// Duplicated reports how many messages the pipe delivered twice.
func (p *Pipe) Duplicated() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.duped
}
