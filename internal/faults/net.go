package faults

import (
	"math/rand"
	"sync"
)

// PipeConfig tunes a lossy notification path. Rates are probabilities in
// [0, 1]; the seeded generator makes every run reproducible.
type PipeConfig struct {
	Seed         int64
	DropRate     float64 // fraction of messages silently discarded
	DupRate      float64 // fraction of delivered messages sent twice
	ReorderEvery int     // shuffle delivery order within windows of this size (0/1 = in order)
}

// Pipe models the UDP hop between the server's syb_sendmsg and the agent's
// Event Notifier: messages can be dropped, duplicated and reordered, but
// never corrupted in flight (the datagram either arrives whole or not at
// all). Hook its Send in front of Agent.Deliver to make the best-effort
// seam explicit and testable.
//
// Beyond the probabilistic config, a Pipe has two deterministic modes the
// cluster chaos harness drives directly:
//
//   - Partition: while partitioned, every Send is discarded (and counted).
//     A Pipe carries one direction of a link, so partitioning only the
//     A→B pipe of an A↔B pair models an *asymmetric* partition — B still
//     hears A's peer, A hears nothing — the classic zombie-primary
//     topology.
//   - Latency: while latency injection is on, surviving messages are held
//     in arrival order instead of delivered; ReleaseHeld (or switching the
//     mode off) delivers them. Delay becomes an explicit, reproducible
//     test step instead of a sleep.
type Pipe struct {
	cfg     PipeConfig
	deliver func(msg string)

	mu          sync.Mutex
	rng         *rand.Rand
	window      []string
	dropped     int
	duped       int
	partitioned bool     // guarded by mu
	cut         int      // messages discarded by partition; guarded by mu
	latency     bool     // guarded by mu
	held        []string // messages delayed by latency mode; guarded by mu
}

// NewPipe returns a pipe that forwards surviving messages to deliver.
func NewPipe(cfg PipeConfig, deliver func(msg string)) *Pipe {
	return &Pipe{cfg: cfg, deliver: deliver, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Send puts one message through the faulty path.
func (p *Pipe) Send(msg string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.partitioned {
		p.cut++
		return
	}
	if p.latency {
		p.held = append(p.held, msg)
		return
	}
	if p.rng.Float64() < p.cfg.DropRate {
		p.dropped++
		return
	}
	copies := 1
	if p.rng.Float64() < p.cfg.DupRate {
		copies = 2
		p.duped++
	}
	for i := 0; i < copies; i++ {
		p.window = append(p.window, msg)
	}
	if p.cfg.ReorderEvery > 1 && len(p.window) < p.cfg.ReorderEvery {
		return // hold for the reorder window
	}
	p.flushLocked()
}

// Flush delivers anything still held in the reorder window.
func (p *Pipe) Flush() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.flushLocked()
}

func (p *Pipe) flushLocked() {
	if p.cfg.ReorderEvery > 1 {
		p.rng.Shuffle(len(p.window), func(i, j int) {
			p.window[i], p.window[j] = p.window[j], p.window[i]
		})
	}
	for _, m := range p.window {
		p.deliver(m)
	}
	p.window = p.window[:0]
}

// Dropped reports how many messages the pipe discarded.
func (p *Pipe) Dropped() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dropped
}

// Duplicated reports how many messages the pipe delivered twice.
func (p *Pipe) Duplicated() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.duped
}

// SetPartitioned switches the partition mode. While on, every Send is
// discarded like a datagram into an unplugged cable — counted by Cut,
// never delivered late. Healing the partition does not resurrect what it
// ate; recovery of those messages is the receiver's problem (resync), by
// design.
func (p *Pipe) SetPartitioned(on bool) {
	p.mu.Lock()
	p.partitioned = on
	p.mu.Unlock()
}

// Cut reports how many messages a partition discarded.
func (p *Pipe) Cut() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cut
}

// SetLatency switches latency injection. While on, messages that survive
// the partition check are queued instead of delivered; switching it off
// releases the queue in arrival order.
func (p *Pipe) SetLatency(on bool) {
	p.mu.Lock()
	p.latency = on
	var release []string
	if !on {
		release = p.held
		p.held = nil
	}
	p.mu.Unlock()
	for _, m := range release {
		p.deliver(m)
	}
}

// ReleaseHeld delivers up to n delayed messages (all of them when n < 0)
// in arrival order, keeping latency mode on — the step-by-step delay the
// chaos harness uses to interleave late messages with other events.
// It returns how many were delivered.
func (p *Pipe) ReleaseHeld(n int) int {
	p.mu.Lock()
	if n < 0 || n > len(p.held) {
		n = len(p.held)
	}
	release := p.held[:n]
	p.held = append([]string(nil), p.held[n:]...)
	p.mu.Unlock()
	for _, m := range release {
		p.deliver(m)
	}
	return len(release)
}

// Held reports how many messages latency injection is currently delaying.
func (p *Pipe) Held() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.held)
}
