package faults

import (
	"reflect"
	"testing"
)

// An asymmetric partition must cut exactly one direction: A's traffic
// vanishes (counted, never delivered late) while B's keeps flowing.
func TestDuplexAsymmetricPartition(t *testing.T) {
	var atob, btoa []string
	d := NewDuplex(PipeConfig{Seed: 1},
		func(m string) { atob = append(atob, m) },
		func(m string) { btoa = append(btoa, m) })

	d.Send(AtoB, "hb-1")
	d.Send(BtoA, "ack-1")

	d.SetPartitioned(AtoB, true)
	d.Send(AtoB, "hb-2")
	d.Send(AtoB, "hb-3")
	d.Send(BtoA, "ack-2")

	if want := []string{"hb-1"}; !reflect.DeepEqual(atob, want) {
		t.Fatalf("a->b delivered %v, want %v", atob, want)
	}
	if want := []string{"ack-1", "ack-2"}; !reflect.DeepEqual(btoa, want) {
		t.Fatalf("b->a delivered %v, want %v", btoa, want)
	}
	if got := d.Cut(AtoB); got != 2 {
		t.Fatalf("a->b cut = %d, want 2", got)
	}
	if got := d.Cut(BtoA); got != 0 {
		t.Fatalf("b->a cut = %d, want 0", got)
	}

	// Healing restores the direction but never resurrects what it ate.
	d.SetPartitioned(AtoB, false)
	d.Send(AtoB, "hb-4")
	if want := []string{"hb-1", "hb-4"}; !reflect.DeepEqual(atob, want) {
		t.Fatalf("a->b after heal delivered %v, want %v", atob, want)
	}
}

// Per-direction latency must hold one direction's messages in order while
// the other stays prompt, with step-by-step release.
func TestDuplexPerDirectionLatency(t *testing.T) {
	var atob, btoa []string
	d := NewDuplex(PipeConfig{Seed: 2},
		func(m string) { atob = append(atob, m) },
		func(m string) { btoa = append(btoa, m) })

	d.SetLatency(BtoA, true)
	d.Send(AtoB, "req-1")
	d.Send(BtoA, "resp-1")
	d.Send(BtoA, "resp-2")
	d.Send(AtoB, "req-2")

	if want := []string{"req-1", "req-2"}; !reflect.DeepEqual(atob, want) {
		t.Fatalf("a->b delivered %v, want %v", atob, want)
	}
	if len(btoa) != 0 || d.Held(BtoA) != 2 {
		t.Fatalf("b->a delivered %v held %d, want nothing delivered, 2 held", btoa, d.Held(BtoA))
	}

	if n := d.ReleaseHeld(BtoA, 1); n != 1 {
		t.Fatalf("ReleaseHeld(1) = %d, want 1", n)
	}
	if want := []string{"resp-1"}; !reflect.DeepEqual(btoa, want) {
		t.Fatalf("b->a after partial release %v, want %v", btoa, want)
	}

	d.SetLatency(BtoA, false) // switching off flushes the rest in order
	if want := []string{"resp-1", "resp-2"}; !reflect.DeepEqual(btoa, want) {
		t.Fatalf("b->a after release %v, want %v", btoa, want)
	}
	if d.Held(BtoA) != 0 {
		t.Fatalf("b->a still holding %d", d.Held(BtoA))
	}
}

// SetPartitionedBoth is the symmetric cut: both directions go dark.
func TestDuplexSymmetricPartition(t *testing.T) {
	var atob, btoa []string
	d := NewDuplex(PipeConfig{Seed: 3},
		func(m string) { atob = append(atob, m) },
		func(m string) { btoa = append(btoa, m) })
	d.SetPartitionedBoth(true)
	d.Send(AtoB, "x")
	d.Send(BtoA, "y")
	if len(atob) != 0 || len(btoa) != 0 {
		t.Fatalf("partitioned link delivered a->b %v b->a %v", atob, btoa)
	}
	if d.Cut(AtoB) != 1 || d.Cut(BtoA) != 1 {
		t.Fatalf("cut counts a->b %d b->a %d, want 1/1", d.Cut(AtoB), d.Cut(BtoA))
	}
}
