// Package faults provides seeded, deterministic fault injection for the
// agent's two lossy seams: the Open Client style upstream connections
// (Action Handler, Persistent Manager) and the UDP notification path into
// the Event Notifier. Every resilience guarantee the agent claims is proven
// by tests that use this package to actually drop, duplicate, reorder and
// kill things on a reproducible schedule.
package faults

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"syscall"

	"github.com/activedb/ecaagent/internal/sqltypes"
)

// Fault is one injected behavior for a single upstream call.
type Fault int

const (
	// None lets the call through to the wrapped upstream.
	None Fault = iota
	// Error fails the call with a transient connection-reset error before
	// it reaches the wrapped upstream (the server never saw it).
	Error
	// Hang blocks the call until the upstream is closed, then fails it —
	// the stalled-connection case a per-attempt deadline must abort.
	Hang
	// Disconnect fails the call and kills the wrapped connection: every
	// later call on the same connection fails until the dialer is asked
	// for a fresh one.
	Disconnect
)

// String names the fault for logs and test failure messages.
func (f Fault) String() string {
	switch f {
	case None:
		return "none"
	case Error:
		return "error"
	case Hang:
		return "hang"
	case Disconnect:
		return "disconnect"
	default:
		return fmt.Sprintf("Fault(%d)", int(f))
	}
}

// Schedule decides the fault injected into the n-th armed call (0-based).
// The call counter is shared across reconnects, so a schedule describes the
// whole life of a logical connection, not one physical dial.
type Schedule func(call int) Fault

// Script injects the listed faults in order, then None forever.
func Script(faults ...Fault) Schedule {
	return func(call int) Fault {
		if call < len(faults) {
			return faults[call]
		}
		return None
	}
}

// Cycle repeats the listed faults round-robin forever.
func Cycle(faults ...Fault) Schedule {
	return func(call int) Fault {
		if len(faults) == 0 {
			return None
		}
		return faults[call%len(faults)]
	}
}

// Bernoulli injects f on each call with the given probability, driven by a
// seeded generator so runs are reproducible.
func Bernoulli(seed int64, rate float64, f Fault) Schedule {
	rng := rand.New(rand.NewSource(seed))
	var mu sync.Mutex
	return func(int) Fault {
		mu.Lock()
		defer mu.Unlock()
		if rng.Float64() < rate {
			return f
		}
		return None
	}
}

// Upstream is the structural twin of agent.Upstream, declared here so the
// package stays free of an agent dependency (and usable against any
// connection-shaped thing).
type Upstream interface {
	Exec(sql string) ([]*sqltypes.ResultSet, error)
	Close() error
}

// Injector owns a fault schedule and the call counter that survives
// reconnects. Wrap every connection of one logical upstream with the same
// Injector and the schedule plays out across redials.
//
// An Injector starts disarmed: calls pass through without consuming the
// schedule, so test setup traffic (rule creation, bootstrap DDL) does not
// shift the fault positions. Arm it when the chaos phase begins.
type Injector struct {
	mu    sync.Mutex
	sched Schedule
	calls int
	armed bool
}

// NewInjector returns a disarmed injector over the schedule.
func NewInjector(sched Schedule) *Injector {
	if sched == nil {
		sched = Script()
	}
	return &Injector{sched: sched}
}

// Arm starts consuming the schedule.
func (i *Injector) Arm() {
	i.mu.Lock()
	i.armed = true
	i.mu.Unlock()
}

// Disarm stops injecting; calls pass through again.
func (i *Injector) Disarm() {
	i.mu.Lock()
	i.armed = false
	i.mu.Unlock()
}

// Calls reports how many armed calls have consumed the schedule.
func (i *Injector) Calls() int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.calls
}

// next consumes one schedule slot (when armed).
func (i *Injector) next() Fault {
	i.mu.Lock()
	defer i.mu.Unlock()
	if !i.armed {
		return None
	}
	f := i.sched(i.calls)
	i.calls++
	return f
}

// Wrap decorates one dialed connection with this injector's schedule.
func (i *Injector) Wrap(inner Upstream) *FaultyUpstream {
	return &FaultyUpstream{inj: i, inner: inner, closed: make(chan struct{})}
}

// FaultyUpstream is an Upstream decorator that misbehaves on the wrapping
// Injector's schedule. Injected failures happen *before* the wrapped call,
// modelling a connection that died in transit: the server never executed
// the batch, so a retried call runs it exactly once.
type FaultyUpstream struct {
	inj   *Injector
	inner Upstream

	mu        sync.Mutex
	dead      bool
	closeOnce sync.Once
	closed    chan struct{}
}

// errDisconnected wraps net.ErrClosed so the agent's retryable-error
// classification recognizes it without importing this package.
func errDisconnected(why string) error {
	return fmt.Errorf("faults: %s: %w", why, net.ErrClosed)
}

// Exec applies the scheduled fault, passing clean calls to the wrapped
// upstream.
func (u *FaultyUpstream) Exec(sql string) ([]*sqltypes.ResultSet, error) {
	u.mu.Lock()
	dead := u.dead
	u.mu.Unlock()
	if dead {
		return nil, errDisconnected("connection is down")
	}
	select {
	case <-u.closed:
		return nil, errDisconnected("upstream closed")
	default:
	}
	switch u.inj.next() {
	case Error:
		return nil, fmt.Errorf("faults: injected transient error: %w", syscall.ECONNRESET)
	case Disconnect:
		u.mu.Lock()
		u.dead = true
		u.mu.Unlock()
		return nil, errDisconnected("injected disconnect")
	case Hang:
		<-u.closed // block until someone closes the connection
		return nil, errDisconnected("hung call aborted by close")
	}
	return u.inner.Exec(sql)
}

// Close closes the wrapped connection and releases any hung calls.
func (u *FaultyUpstream) Close() error {
	u.closeOnce.Do(func() { close(u.closed) })
	return u.inner.Close()
}
