package faults

import (
	"errors"
	"net"
	"sync"
	"syscall"
	"testing"
	"time"

	"github.com/activedb/ecaagent/internal/sqltypes"
)

// okUp is a trivially healthy upstream.
type okUp struct {
	mu    sync.Mutex
	execs int
}

func (u *okUp) Exec(sql string) ([]*sqltypes.ResultSet, error) {
	u.mu.Lock()
	u.execs++
	u.mu.Unlock()
	return nil, nil
}
func (u *okUp) Close() error { return nil }

func (u *okUp) count() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.execs
}

func TestSchedules(t *testing.T) {
	s := Script(Error, Hang)
	if s(0) != Error || s(1) != Hang || s(2) != None || s(100) != None {
		t.Error("Script order wrong")
	}
	c := Cycle(None, Disconnect)
	if c(0) != None || c(1) != Disconnect || c(2) != None || c(3) != Disconnect {
		t.Error("Cycle order wrong")
	}
	// Bernoulli is deterministic for a fixed seed.
	a, b := Bernoulli(7, 0.5, Error), Bernoulli(7, 0.5, Error)
	for i := 0; i < 100; i++ {
		if a(i) != b(i) {
			t.Fatalf("Bernoulli diverged at call %d", i)
		}
	}
}

func TestInjectorArming(t *testing.T) {
	inj := NewInjector(Script(Error))
	up := inj.Wrap(&okUp{})
	// Disarmed: the schedule is not consumed.
	if _, err := up.Exec("x"); err != nil {
		t.Fatalf("disarmed call failed: %v", err)
	}
	if inj.Calls() != 0 {
		t.Fatalf("disarmed call consumed schedule: %d", inj.Calls())
	}
	inj.Arm()
	if _, err := up.Exec("x"); !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("armed Error fault: got %v", err)
	}
	if _, err := up.Exec("x"); err != nil {
		t.Fatalf("post-script call failed: %v", err)
	}
	inj.Disarm()
	calls := inj.Calls()
	if _, err := up.Exec("x"); err != nil || inj.Calls() != calls {
		t.Fatal("disarm did not stop consumption")
	}
}

func TestDisconnectKillsConnection(t *testing.T) {
	inj := NewInjector(Script(Disconnect))
	inj.Arm()
	inner := &okUp{}
	up := inj.Wrap(inner)
	if _, err := up.Exec("x"); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("disconnect fault: got %v", err)
	}
	// The connection stays dead without consuming more schedule.
	if _, err := up.Exec("x"); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("dead connection answered: %v", err)
	}
	if inner.count() != 0 {
		t.Fatalf("inner executed %d times through a dead connection", inner.count())
	}
	// A freshly wrapped (redialed) connection works again.
	if _, err := inj.Wrap(&okUp{}).Exec("x"); err != nil {
		t.Fatalf("fresh connection after disconnect: %v", err)
	}
}

func TestHangReleasedByClose(t *testing.T) {
	inj := NewInjector(Script(Hang))
	inj.Arm()
	up := inj.Wrap(&okUp{})
	errCh := make(chan error, 1)
	go func() {
		_, err := up.Exec("x")
		errCh <- err
	}()
	select {
	case err := <-errCh:
		t.Fatalf("hung call returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	up.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, net.ErrClosed) {
			t.Fatalf("aborted hang error: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("close did not release the hung call")
	}
}

func TestPipeDeterministicDropDupReorder(t *testing.T) {
	run := func() (got []string, dropped, duped int) {
		p := NewPipe(PipeConfig{Seed: 42, DropRate: 0.3, DupRate: 0.2, ReorderEvery: 3}, func(m string) {
			got = append(got, m)
		})
		for _, m := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
			p.Send(m)
		}
		p.Flush()
		return got, p.Dropped(), p.Duplicated()
	}
	got1, d1, u1 := run()
	got2, d2, u2 := run()
	if len(got1) != len(got2) || d1 != d2 || u1 != u2 {
		t.Fatalf("pipe not deterministic: %v/%d/%d vs %v/%d/%d", got1, d1, u1, got2, d2, u2)
	}
	for i := range got1 {
		if got1[i] != got2[i] {
			t.Fatalf("pipe order not deterministic: %v vs %v", got1, got2)
		}
	}
	if d1+len(got1)-u1 != 8 {
		t.Errorf("conservation: delivered %d, dropped %d, duped %d of 8", len(got1), d1, u1)
	}
}

func TestPipeInOrderWhenNoFaults(t *testing.T) {
	var got []string
	p := NewPipe(PipeConfig{Seed: 1}, func(m string) { got = append(got, m) })
	p.Send("1")
	p.Send("2")
	p.Flush()
	if len(got) != 2 || got[0] != "1" || got[1] != "2" {
		t.Fatalf("clean pipe reordered: %v", got)
	}
}

func TestPipePartition(t *testing.T) {
	var got []string
	p := NewPipe(PipeConfig{}, func(m string) { got = append(got, m) })
	p.Send("a")
	p.SetPartitioned(true)
	p.Send("b")
	p.Send("c")
	p.SetPartitioned(false)
	p.Send("d")
	if want := []string{"a", "d"}; !sliceEq(got, want) {
		t.Fatalf("delivered %v, want %v", got, want)
	}
	if p.Cut() != 2 {
		t.Fatalf("cut = %d, want 2", p.Cut())
	}
	// Partitioned messages are gone for good: healing does not replay them.
	if p.Held() != 0 {
		t.Fatalf("partition held messages: %d", p.Held())
	}
}

func TestPipeLatency(t *testing.T) {
	var got []string
	p := NewPipe(PipeConfig{}, func(m string) { got = append(got, m) })
	p.SetLatency(true)
	p.Send("a")
	p.Send("b")
	p.Send("c")
	if len(got) != 0 || p.Held() != 3 {
		t.Fatalf("latency mode delivered early: got=%v held=%d", got, p.Held())
	}
	if n := p.ReleaseHeld(1); n != 1 {
		t.Fatalf("ReleaseHeld(1) = %d", n)
	}
	if want := []string{"a"}; !sliceEq(got, want) {
		t.Fatalf("partial release delivered %v", got)
	}
	p.Send("d")
	p.SetLatency(false) // releases the rest in arrival order
	p.Send("e")
	if want := []string{"a", "b", "c", "d", "e"}; !sliceEq(got, want) {
		t.Fatalf("delivered %v, want %v", got, want)
	}
}

// TestPipeAsymmetricPair models the zombie-primary topology: the A→B
// direction is cut while B→A still flows.
func TestPipeAsymmetricPair(t *testing.T) {
	var atB, atA []string
	aToB := NewPipe(PipeConfig{}, func(m string) { atB = append(atB, m) })
	bToA := NewPipe(PipeConfig{}, func(m string) { atA = append(atA, m) })
	aToB.SetPartitioned(true)
	aToB.Send("hb-from-a")
	bToA.Send("hb-from-b")
	if len(atB) != 0 {
		t.Fatalf("partitioned direction delivered: %v", atB)
	}
	if want := []string{"hb-from-b"}; !sliceEq(atA, want) {
		t.Fatalf("healthy direction delivered %v", atA)
	}
}

// TestPipeLatencyRespectsPartition: the partition check runs first, so a
// cut message is never queued for later delivery.
func TestPipeLatencyRespectsPartition(t *testing.T) {
	p := NewPipe(PipeConfig{}, func(string) { t.Fatal("delivered") })
	p.SetLatency(true)
	p.SetPartitioned(true)
	p.Send("x")
	if p.Held() != 0 || p.Cut() != 1 {
		t.Fatalf("held=%d cut=%d", p.Held(), p.Cut())
	}
}

func sliceEq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
