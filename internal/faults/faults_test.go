package faults

import (
	"errors"
	"net"
	"sync"
	"syscall"
	"testing"
	"time"

	"github.com/activedb/ecaagent/internal/sqltypes"
)

// okUp is a trivially healthy upstream.
type okUp struct {
	mu    sync.Mutex
	execs int
}

func (u *okUp) Exec(sql string) ([]*sqltypes.ResultSet, error) {
	u.mu.Lock()
	u.execs++
	u.mu.Unlock()
	return nil, nil
}
func (u *okUp) Close() error { return nil }

func (u *okUp) count() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.execs
}

func TestSchedules(t *testing.T) {
	s := Script(Error, Hang)
	if s(0) != Error || s(1) != Hang || s(2) != None || s(100) != None {
		t.Error("Script order wrong")
	}
	c := Cycle(None, Disconnect)
	if c(0) != None || c(1) != Disconnect || c(2) != None || c(3) != Disconnect {
		t.Error("Cycle order wrong")
	}
	// Bernoulli is deterministic for a fixed seed.
	a, b := Bernoulli(7, 0.5, Error), Bernoulli(7, 0.5, Error)
	for i := 0; i < 100; i++ {
		if a(i) != b(i) {
			t.Fatalf("Bernoulli diverged at call %d", i)
		}
	}
}

func TestInjectorArming(t *testing.T) {
	inj := NewInjector(Script(Error))
	up := inj.Wrap(&okUp{})
	// Disarmed: the schedule is not consumed.
	if _, err := up.Exec("x"); err != nil {
		t.Fatalf("disarmed call failed: %v", err)
	}
	if inj.Calls() != 0 {
		t.Fatalf("disarmed call consumed schedule: %d", inj.Calls())
	}
	inj.Arm()
	if _, err := up.Exec("x"); !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("armed Error fault: got %v", err)
	}
	if _, err := up.Exec("x"); err != nil {
		t.Fatalf("post-script call failed: %v", err)
	}
	inj.Disarm()
	calls := inj.Calls()
	if _, err := up.Exec("x"); err != nil || inj.Calls() != calls {
		t.Fatal("disarm did not stop consumption")
	}
}

func TestDisconnectKillsConnection(t *testing.T) {
	inj := NewInjector(Script(Disconnect))
	inj.Arm()
	inner := &okUp{}
	up := inj.Wrap(inner)
	if _, err := up.Exec("x"); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("disconnect fault: got %v", err)
	}
	// The connection stays dead without consuming more schedule.
	if _, err := up.Exec("x"); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("dead connection answered: %v", err)
	}
	if inner.count() != 0 {
		t.Fatalf("inner executed %d times through a dead connection", inner.count())
	}
	// A freshly wrapped (redialed) connection works again.
	if _, err := inj.Wrap(&okUp{}).Exec("x"); err != nil {
		t.Fatalf("fresh connection after disconnect: %v", err)
	}
}

func TestHangReleasedByClose(t *testing.T) {
	inj := NewInjector(Script(Hang))
	inj.Arm()
	up := inj.Wrap(&okUp{})
	errCh := make(chan error, 1)
	go func() {
		_, err := up.Exec("x")
		errCh <- err
	}()
	select {
	case err := <-errCh:
		t.Fatalf("hung call returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	up.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, net.ErrClosed) {
			t.Fatalf("aborted hang error: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("close did not release the hung call")
	}
}

func TestPipeDeterministicDropDupReorder(t *testing.T) {
	run := func() (got []string, dropped, duped int) {
		p := NewPipe(PipeConfig{Seed: 42, DropRate: 0.3, DupRate: 0.2, ReorderEvery: 3}, func(m string) {
			got = append(got, m)
		})
		for _, m := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
			p.Send(m)
		}
		p.Flush()
		return got, p.Dropped(), p.Duplicated()
	}
	got1, d1, u1 := run()
	got2, d2, u2 := run()
	if len(got1) != len(got2) || d1 != d2 || u1 != u2 {
		t.Fatalf("pipe not deterministic: %v/%d/%d vs %v/%d/%d", got1, d1, u1, got2, d2, u2)
	}
	for i := range got1 {
		if got1[i] != got2[i] {
			t.Fatalf("pipe order not deterministic: %v vs %v", got1, got2)
		}
	}
	if d1+len(got1)-u1 != 8 {
		t.Errorf("conservation: delivered %d, dropped %d, duped %d of 8", len(got1), d1, u1)
	}
}

func TestPipeInOrderWhenNoFaults(t *testing.T) {
	var got []string
	p := NewPipe(PipeConfig{Seed: 1}, func(m string) { got = append(got, m) })
	p.Send("1")
	p.Send("2")
	p.Flush()
	if len(got) != 2 || got[0] != "1" || got[1] != "2" {
		t.Fatalf("clean pipe reordered: %v", got)
	}
}
