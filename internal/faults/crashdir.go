package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"github.com/activedb/ecaagent/internal/storage"
)

// CrashDir is an in-memory storage.FS that models what a real disk does to
// a crashing process: bytes written but not fsynced may be lost — or worse,
// partially persisted (a torn tail) — while synced bytes and completed
// renames survive. The crash-differential harness hands one CrashDir to an
// agent, calls Crash at the simulated kill, then Restart and hands the same
// CrashDir to the recovering agent, which sees exactly the durable image a
// restarted process would.
//
// Metadata operations (Create/Rename/Remove) are modeled as immediately
// durable; the interesting loss channel for the WAL/checkpoint protocol is
// file data, and the checkpoint writer fsyncs file content before its
// publish rename anyway.
type CrashDir struct {
	mu      sync.Mutex
	rng     *rand.Rand
	durable map[string][]byte
	open    map[string]*crashFile
	crashed bool
	// syncs counts File.Sync calls that persisted data (tests assert group
	// commit actually syncs).
	syncs int
}

// NewCrashDir returns an empty CrashDir; seed drives the torn-tail lengths
// chosen at Crash.
func NewCrashDir(seed int64) *CrashDir {
	return &CrashDir{
		rng:     rand.New(rand.NewSource(seed)),
		durable: make(map[string][]byte),
		open:    make(map[string]*crashFile),
	}
}

type crashFile struct {
	d       *CrashDir
	name    string
	pending []byte // written, not yet synced
	closed  bool
}

// Create truncates or creates a file. The previous durable content is
// discarded, as os.Create would.
func (d *CrashDir) Create(name string) (storage.File, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return nil, fmt.Errorf("crashdir: crashed")
	}
	d.durable[name] = nil
	f := &crashFile{d: d, name: name}
	d.open[name] = f
	return f, nil
}

func (f *crashFile) Write(p []byte) (int, error) {
	f.d.mu.Lock()
	defer f.d.mu.Unlock()
	if f.d.crashed || f.closed {
		return 0, fmt.Errorf("crashdir: write to %s after crash/close", f.name)
	}
	f.pending = append(f.pending, p...)
	return len(p), nil
}

func (f *crashFile) Sync() error {
	f.d.mu.Lock()
	defer f.d.mu.Unlock()
	if f.d.crashed {
		return fmt.Errorf("crashdir: sync after crash")
	}
	if len(f.pending) > 0 {
		f.d.durable[f.name] = append(f.d.durable[f.name], f.pending...)
		f.pending = nil
		f.d.syncs++
	}
	return nil
}

// Close marks the handle closed. Unsynced bytes stay pending — close is
// not durability — and are still subject to loss at Crash.
func (f *crashFile) Close() error {
	f.d.mu.Lock()
	defer f.d.mu.Unlock()
	f.closed = true
	return nil
}

// ReadFile returns the file's current content: durable bytes plus, while
// the process is "alive", whatever an open handle has written (the OS page
// cache is coherent for readers in the same process).
func (d *CrashDir) ReadFile(name string) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	b, ok := d.durable[name]
	if !ok {
		return nil, fmt.Errorf("crashdir: %s: no such file", name)
	}
	out := append([]byte(nil), b...)
	if f, live := d.open[name]; live && !d.crashed {
		out = append(out, f.pending...)
	}
	return out, nil
}

// Rename moves a file; any open handle keeps writing under the new name.
func (d *CrashDir) Rename(oldName, newName string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return fmt.Errorf("crashdir: crashed")
	}
	b, ok := d.durable[oldName]
	if !ok {
		return fmt.Errorf("crashdir: %s: no such file", oldName)
	}
	d.durable[newName] = b
	delete(d.durable, oldName)
	if f, live := d.open[oldName]; live {
		f.name = newName
		d.open[newName] = f
		delete(d.open, oldName)
	}
	return nil
}

// Remove deletes a file.
func (d *CrashDir) Remove(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return fmt.Errorf("crashdir: crashed")
	}
	if _, ok := d.durable[name]; !ok {
		return fmt.Errorf("crashdir: %s: no such file", name)
	}
	delete(d.durable, name)
	delete(d.open, name)
	return nil
}

// List returns current file names, sorted.
func (d *CrashDir) List() ([]string, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	names := make([]string, 0, len(d.durable))
	for n := range d.durable {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// SyncDir is a no-op: metadata is modeled as immediately durable.
func (d *CrashDir) SyncDir() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return fmt.Errorf("crashdir: crashed")
	}
	return nil
}

// Crash simulates losing the process: for every open handle a random
// prefix of its unsynced bytes (possibly none, possibly all — a torn tail)
// is persisted, the rest vanish, and every subsequent operation fails until
// Restart.
func (d *CrashDir) Crash() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return
	}
	names := make([]string, 0, len(d.open))
	for n := range d.open {
		names = append(names, n)
	}
	sort.Strings(names) // deterministic rng consumption order
	for _, n := range names {
		f := d.open[n]
		if len(f.pending) > 0 {
			keep := d.rng.Intn(len(f.pending) + 1)
			d.durable[n] = append(d.durable[n], f.pending[:keep]...)
		}
	}
	d.open = make(map[string]*crashFile)
	d.crashed = true
}

// Restart clears the crashed flag, modeling the next process start over
// the surviving durable image.
func (d *CrashDir) Restart() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.crashed = false
}

// Syncs reports how many Sync calls persisted data.
func (d *CrashDir) Syncs() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.syncs
}
