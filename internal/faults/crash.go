package faults

import (
	"fmt"
	"sync"
)

// Named crash points let the crash-differential harness kill the agent at
// precise places in the durability protocol (after the WAL append, before
// the signal; before an action executes; between checkpoint write and
// rename; ...). Production code calls Hit(name) at each point on a nil
// *CrashSet — a no-op — and the harness injects a CrashSet armed for one
// specific point and occurrence count.
//
// A tripped crash point panics with a sentinel the harness recognizes
// (IsCrash); goroutines the agent owns shield themselves with
// `defer Recover(set)` so a simulated crash on a worker does not take the
// test process down. After the first trip every other point disarms — a
// run crashes once.

// crashErr is the sentinel panic payload.
type crashErr struct{ point string }

func (e crashErr) Error() string { return fmt.Sprintf("faults: simulated crash at %q", e.point) }

// CrashSet is a collection of armed crash points. The zero value and nil
// are inert.
type CrashSet struct {
	mu      sync.Mutex
	armed   map[string]int // point → hits remaining before it trips
	hits    map[string]int // point → times reached (diagnostics)
	tripped string
}

// NewCrashSet returns an empty, unarmed set.
func NewCrashSet() *CrashSet {
	return &CrashSet{armed: make(map[string]int), hits: make(map[string]int)}
}

// Arm makes the set trip on the nth (1-based) Hit of point.
func (c *CrashSet) Arm(point string, nth int) {
	if nth < 1 {
		nth = 1
	}
	c.mu.Lock()
	c.armed[point] = nth
	c.mu.Unlock()
}

// Hit marks one pass through a crash point, panicking with the crash
// sentinel when the point's armed count is reached. Safe (and free) on a
// nil set.
func (c *CrashSet) Hit(point string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.hits[point]++
	if c.tripped != "" {
		c.mu.Unlock()
		return
	}
	n, ok := c.armed[point]
	if !ok || c.hits[point] < n {
		c.mu.Unlock()
		return
	}
	c.tripped = point
	c.mu.Unlock()
	panic(crashErr{point: point})
}

// Tripped reports which point crashed this run ("" when none has).
func (c *CrashSet) Tripped() string {
	if c == nil {
		return ""
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tripped
}

// Hits reports how many times a point was reached.
func (c *CrashSet) Hits(point string) int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits[point]
}

// IsCrash reports whether a recovered panic value is the crash sentinel,
// returning the point that tripped.
func IsCrash(r interface{}) (point string, ok bool) {
	e, ok := r.(crashErr)
	return e.point, ok
}

// Recover is deferred at the top of agent-owned goroutines: it swallows a
// simulated-crash panic (the goroutine just stops, like a dead process's
// would) and re-panics anything else. A nil set still recovers — the
// sentinel can cross goroutines regardless of who owns the set.
func Recover() {
	r := recover()
	if r == nil {
		return
	}
	if _, ok := IsCrash(r); ok {
		return
	}
	panic(r)
}
