package faults

// Dir names one direction of a Duplex link.
type Dir int

const (
	// AtoB is the forward direction (first deliver function).
	AtoB Dir = iota
	// BtoA is the reverse direction (second deliver function).
	BtoA
)

func (d Dir) String() string {
	if d == AtoB {
		return "a->b"
	}
	return "b->a"
}

// Duplex couples two Pipes into one bidirectional link with independent
// per-direction fault modes. A symmetric partition cuts both pipes; an
// asymmetric one cuts a single direction — the zombie-primary topology
// the failover suite needs, where the old primary's traffic (heartbeats,
// replication, lease renewals) goes dark while it still hears enough of
// the world to believe it leads. Per-direction latency likewise models
// an asymmetrically congested link.
type Duplex struct {
	pipes [2]*Pipe
}

// NewDuplex builds a link from one config, deriving a distinct seed for
// the reverse direction so the two fault streams are independent but the
// whole link stays reproducible from cfg.Seed.
func NewDuplex(cfg PipeConfig, deliverAtoB, deliverBtoA func(msg string)) *Duplex {
	rev := cfg
	rev.Seed = cfg.Seed ^ 0x5bd1e995 // distinct, still deterministic
	return &Duplex{pipes: [2]*Pipe{NewPipe(cfg, deliverAtoB), NewPipe(rev, deliverBtoA)}}
}

// Pipe exposes one direction for the full Pipe API.
func (d *Duplex) Pipe(dir Dir) *Pipe { return d.pipes[dir] }

// Send puts one message through the given direction.
func (d *Duplex) Send(dir Dir, msg string) { d.pipes[dir].Send(msg) }

// SetPartitioned partitions one direction only — the asymmetric cut.
func (d *Duplex) SetPartitioned(dir Dir, on bool) { d.pipes[dir].SetPartitioned(on) }

// SetPartitionedBoth cuts or heals the whole link symmetrically.
func (d *Duplex) SetPartitionedBoth(on bool) {
	d.pipes[AtoB].SetPartitioned(on)
	d.pipes[BtoA].SetPartitioned(on)
}

// SetLatency switches latency injection for one direction only.
func (d *Duplex) SetLatency(dir Dir, on bool) { d.pipes[dir].SetLatency(on) }

// ReleaseHeld delivers up to n delayed messages on one direction,
// reporting how many went out.
func (d *Duplex) ReleaseHeld(dir Dir, n int) int { return d.pipes[dir].ReleaseHeld(n) }

// Held reports how many messages one direction is currently delaying.
func (d *Duplex) Held(dir Dir) int { return d.pipes[dir].Held() }

// Cut reports how many messages one direction's partition discarded.
func (d *Duplex) Cut(dir Dir) int { return d.pipes[dir].Cut() }
