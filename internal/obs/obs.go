// Package obs is a dependency-free metrics layer for the ECA agent: atomic
// counters, gauges, and fixed-bucket latency histograms collected in a
// Registry that exposes itself in the Prometheus text format. The paper's
// §6 evaluates exactly the paths the agent instruments with it —
// notification delivery, composite detection, and action execution — and
// Reaction-RuleML-style systems treat event-lifecycle monitoring as a
// first-class concern; this package gives the reproduction the same
// footing without pulling in a client library.
package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// DefBuckets are the default latency histogram bounds, in seconds. The
// event path spans ~50 µs (in-process detection) to seconds (retry storms
// under fault injection), so the buckets cover 50 µs .. 5 s log-ish.
var DefBuckets = []float64{
	50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 5,
}

// Counter is a monotonically increasing integral counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the value by d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram of float64 observations
// (conventionally seconds). Buckets are cumulative at exposition, matching
// Prometheus semantics; observation is two atomic adds and a CAS loop for
// the sum — safe for concurrent use with no locking on the hot path.
type Histogram struct {
	bounds  []float64       // upper bounds, ascending; +Inf is implicit
	counts  []atomic.Uint64 // len(bounds)+1, non-cumulative per bucket
	count   atomic.Uint64
	sumBits atomic.Uint64 // math.Float64bits of the running sum
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		s := math.Float64frombits(old) + v
		if h.sumBits.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// ObserveSince records the elapsed time since start, in seconds.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// BucketCount is one cumulative bucket of a histogram snapshot.
type BucketCount struct {
	LE    float64 `json:"le"` // +Inf for the last bucket
	Count uint64  `json:"count"`
}

// MarshalJSON renders the bound as a string ("+Inf" for the last bucket —
// encoding/json rejects infinite float64 values).
func (b BucketCount) MarshalJSON() ([]byte, error) {
	le := "+Inf"
	if !math.IsInf(b.LE, 1) {
		le = strconv.FormatFloat(b.LE, 'g', -1, 64)
	}
	return json.Marshal(struct {
		LE    string `json:"le"`
		Count uint64 `json:"count"`
	}{le, b.Count})
}

// HistogramSnapshot is a point-in-time copy of a histogram, the JSON form
// the agent's /stats endpoint serves.
type HistogramSnapshot struct {
	Count   uint64        `json:"count"`
	Sum     float64       `json:"sum"`
	Buckets []BucketCount `json:"buckets"`
}

// Snapshot copies the histogram. Buckets are cumulative.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Buckets: make([]BucketCount, 0, len(h.bounds)+1)}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		s.Buckets = append(s.Buckets, BucketCount{LE: b, Count: cum})
	}
	cum += h.counts[len(h.bounds)].Load()
	s.Buckets = append(s.Buckets, BucketCount{LE: math.Inf(1), Count: cum})
	s.Count = h.count.Load()
	s.Sum = h.Sum()
	return s
}

// metricKind discriminates families in the registry.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
	kindCounterVec
	kindGaugeVec
)

// family is one named metric family: a scalar, a func, a histogram, or a
// labeled vector of counters.
type family struct {
	name, help string
	kind       metricKind
	label      string // label name for vectors

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64

	mu      sync.Mutex
	series  map[string]*Counter // label value → counter (counter vectors)
	gseries map[string]*Gauge   // label value → gauge (gauge vectors)
}

// Registry collects metric families and renders them. All methods are safe
// for concurrent use; registration methods are idempotent — re-registering
// an existing name with the same shape returns the existing metric, so
// components can share a registry without coordinating.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// register adds a family or returns the existing one; shape mismatches are
// programmer errors and panic.
func (r *Registry) register(f *family) *family {
	if !validName(f.name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", f.name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if have, ok := r.fams[f.name]; ok {
		if have.kind != f.kind || have.label != f.label {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different shape", f.name))
		}
		return have
	}
	r.fams[f.name] = f
	return f
}

// Counter registers (or returns) a scalar counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(&family{name: name, help: help, kind: kindCounter, counter: &Counter{}})
	return f.counter
}

// Gauge registers (or returns) a scalar gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(&family{name: name, help: help, kind: kindGauge, gauge: &Gauge{}})
	return f.gauge
}

// Histogram registers (or returns) a histogram. A nil buckets slice
// selects DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	f := r.register(&family{name: name, help: help, kind: kindHistogram, hist: newHistogram(buckets)})
	return f.hist
}

// CounterFunc registers a counter whose value is read from fn at
// exposition time — the bridge for counters that already live elsewhere
// (e.g. the agent's Stats atomics), avoiding double bookkeeping.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, kind: kindCounterFunc, fn: fn})
}

// GaugeFunc registers a gauge read from fn at exposition time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, kind: kindGaugeFunc, fn: fn})
}

// CounterVec is a family of counters partitioned by one label.
type CounterVec struct{ f *family }

// CounterVec registers (or returns) a labeled counter family.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	f := r.register(&family{
		name: name, help: help, kind: kindCounterVec, label: label,
		series: make(map[string]*Counter),
	})
	return &CounterVec{f: f}
}

// With returns the counter for one label value, creating it on first use.
func (v *CounterVec) With(value string) *Counter {
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	c, ok := v.f.series[value]
	if !ok {
		c = &Counter{}
		v.f.series[value] = c
	}
	return c
}

// GaugeVec is a family of gauges partitioned by one label.
type GaugeVec struct{ f *family }

// GaugeVec registers (or returns) a labeled gauge family.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	f := r.register(&family{
		name: name, help: help, kind: kindGaugeVec, label: label,
		gseries: make(map[string]*Gauge),
	})
	return &GaugeVec{f: f}
}

// With returns the gauge for one label value, creating it on first use.
func (v *GaugeVec) With(value string) *Gauge {
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	g, ok := v.f.gseries[value]
	if !ok {
		g = &Gauge{}
		v.f.gseries[value] = g
	}
	return g
}

// Histograms returns snapshots of every registered histogram, keyed by
// metric name (the /stats JSON payload).
func (r *Registry) Histograms() map[string]HistogramSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]HistogramSnapshot)
	for name, f := range r.fams {
		if f.kind == kindHistogram {
			out[name] = f.hist.Snapshot()
		}
	}
	return out
}

// validName checks the Prometheus metric-name grammar.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_' || r == ':'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}
