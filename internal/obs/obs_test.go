package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d", c.Value())
	}
	g := r.Gauge("test_gauge", "a gauge")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Errorf("gauge = %d", g.Value())
	}
	// Idempotent re-registration returns the same metric.
	if r.Counter("test_total", "a counter") != c {
		t.Error("re-registration returned a new counter")
	}
}

func TestRegistryShapeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Error("shape mismatch did not panic")
		}
	}()
	r.Gauge("m", "")
}

func TestHistogramBucketsAndSnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.001, 0.005, 0.05, 5} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Errorf("count = %d", s.Count)
	}
	if math.Abs(s.Sum-5.0565) > 1e-9 {
		t.Errorf("sum = %g", s.Sum)
	}
	// Cumulative buckets: ≤1ms holds 0.0005 and the boundary 0.001.
	wantCum := []uint64{2, 3, 4, 5}
	for i, b := range s.Buckets {
		if b.Count != wantCum[i] {
			t.Errorf("bucket[%d] (le=%g) = %d want %d", i, b.LE, b.Count, wantCum[i])
		}
	}
	if !math.IsInf(s.Buckets[len(s.Buckets)-1].LE, 1) {
		t.Error("last bucket is not +Inf")
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := newHistogram([]float64{1})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 || math.Abs(h.Sum()-4000) > 1e-6 {
		t.Errorf("count=%d sum=%g", h.Count(), h.Sum())
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "second").Add(2)
	r.Gauge("a_gauge", "first").Set(-3)
	r.CounterFunc("f_total", "func counter", func() float64 { return 9 })
	v := r.CounterVec("rule_runs_total", "per rule", "rule")
	v.With(`db."quoted"`).Add(1)
	v.With("db.plain").Add(4)
	h := r.Histogram("lat_seconds", "latency", []float64{0.5})
	h.Observe(0.25)
	h.Observe(2)

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()

	for _, want := range []string{
		"# TYPE a_gauge gauge\na_gauge -3\n",
		"# TYPE b_total counter\nb_total 2\n",
		"f_total 9\n",
		"rule_runs_total{rule=\"db.\\\"quoted\\\"\"} 1\n",
		`rule_runs_total{rule="db.plain"} 4`,
		`lat_seconds_bucket{le="0.5"} 1`,
		`lat_seconds_bucket{le="+Inf"} 2`,
		"lat_seconds_sum 2.25\n",
		"lat_seconds_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Families must appear in sorted name order.
	if strings.Index(out, "a_gauge") > strings.Index(out, "b_total") {
		t.Error("families not sorted by name")
	}
}

func TestObserveSinceAndDefBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("d_seconds", "", nil)
	h.ObserveSince(time.Now().Add(-10 * time.Millisecond))
	if h.Count() != 1 || h.Sum() <= 0 {
		t.Errorf("count=%d sum=%g", h.Count(), h.Sum())
	}
	if len(h.bounds) != len(DefBuckets) {
		t.Errorf("default buckets not applied")
	}
}

func TestValidName(t *testing.T) {
	for name, want := range map[string]bool{
		"eca_actions_total": true, "a:b_1": true,
		"": false, "1abc": false, "a-b": false, "a b": false,
	} {
		if validName(name) != want {
			t.Errorf("validName(%q) = %v", name, !want)
		}
	}
}

func TestGaugeVec(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("queue_depth", "per worker", "worker")
	v.With("0").Set(3)
	v.With("1").Set(-1)
	v.With("0").Add(2) // same series, not a new one

	// Idempotent re-registration returns the same family.
	if r.GaugeVec("queue_depth", "per worker", "worker").With("0").Value() != 5 {
		t.Error("re-registered GaugeVec lost its series")
	}

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE queue_depth gauge\n",
		`queue_depth{worker="0"} 5`,
		`queue_depth{worker="1"} -1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Series render in sorted label order.
	if strings.Index(out, `worker="0"`) > strings.Index(out, `worker="1"`) {
		t.Error("gauge vector series not sorted")
	}
}

func TestGaugeVecShapeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.GaugeVec("depth", "", "worker")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a GaugeVec as CounterVec should panic")
		}
	}()
	r.CounterVec("depth", "", "worker")
}
