package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (version 0.0.4), in stable name order, so /metrics
// output diffs cleanly between scrapes.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.fams[n])
	}
	r.mu.Unlock()

	for _, f := range fams {
		f.writePrometheus(w)
	}
}

func (f *family) writePrometheus(w io.Writer) {
	typ := "counter"
	switch f.kind {
	case kindGauge, kindGaugeFunc, kindGaugeVec:
		typ = "gauge"
	case kindHistogram:
		typ = "histogram"
	}
	if f.help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, typ)

	switch f.kind {
	case kindCounter:
		fmt.Fprintf(w, "%s %d\n", f.name, f.counter.Value())
	case kindGauge:
		fmt.Fprintf(w, "%s %d\n", f.name, f.gauge.Value())
	case kindCounterFunc, kindGaugeFunc:
		fmt.Fprintf(w, "%s %s\n", f.name, fmtFloat(f.fn()))
	case kindCounterVec:
		f.mu.Lock()
		vals := make([]string, 0, len(f.series))
		for v := range f.series {
			vals = append(vals, v)
		}
		sort.Strings(vals)
		for _, v := range vals {
			fmt.Fprintf(w, "%s{%s=%q} %d\n", f.name, f.label, escapeLabel(v), f.series[v].Value())
		}
		f.mu.Unlock()
	case kindGaugeVec:
		f.mu.Lock()
		vals := make([]string, 0, len(f.gseries))
		for v := range f.gseries {
			vals = append(vals, v)
		}
		sort.Strings(vals)
		for _, v := range vals {
			fmt.Fprintf(w, "%s{%s=%q} %d\n", f.name, f.label, escapeLabel(v), f.gseries[v].Value())
		}
		f.mu.Unlock()
	case kindHistogram:
		s := f.hist.Snapshot()
		for _, b := range s.Buckets {
			le := "+Inf"
			if !math.IsInf(b.LE, 1) {
				le = fmtFloat(b.LE)
			}
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", f.name, le, b.Count)
		}
		fmt.Fprintf(w, "%s_sum %s\n", f.name, fmtFloat(s.Sum))
		fmt.Fprintf(w, "%s_count %d\n", f.name, s.Count)
	}
}

func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel prepares a label value for emission with %q, whose Go
// escaping (backslash, quote, newline) coincides with the exposition
// format's label escaping.
func escapeLabel(s string) string { return s }
