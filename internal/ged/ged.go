// Package ged implements the Global Event Detector the paper's §6 lists as
// future work: "support heterogeneous distributed active capability ...
// and use a global event detector (GED) for events and rules across
// application/systems."
//
// Sites (ECA agents) forward their primitive event occurrences to the GED,
// where global composite events — Snoop expressions over site-qualified
// event references (eventName::siteName, the BNF's AppId form) — are
// detected with the same parameter contexts as local events.
package ged

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/activedb/ecaagent/internal/led"
	"github.com/activedb/ecaagent/internal/obs"
	"github.com/activedb/ecaagent/internal/snoop"
)

// globalName is the GED-internal name of a site-qualified event.
func globalName(event, site string) string { return event + "::" + site }

// GED detects composite events spanning multiple sites.
type GED struct {
	// mu guards sites and autoRegister. Signal takes it shared: the fan-in
	// path from many forwarding sites only reads the registry once its
	// site and event are known, so concurrent sites contend on the global
	// LED's shard locks, not on a single GED mutex.
	mu    sync.RWMutex
	led   *led.LED
	sites map[string]bool // guarded by mu
	// autoRegister lets Signal register unknown sites on first contact.
	// Off by default: RegisterSite promises "already registered" errors,
	// and silently adopting any sender contradicts that contract (and lets
	// a typoed site name shadow a real one forever).
	autoRegister bool // guarded by mu

	sigAccepted atomic.Uint64
	sigAutoReg  atomic.Uint64
	sigRejected atomic.Uint64

	conn *net.UDPConn
	wg   sync.WaitGroup
}

// New returns a GED. A nil clock selects real time. Signals from
// unregistered sites are rejected (and counted) unless SetAutoRegister
// enables lazy adoption.
func New(clock led.Clock) *GED {
	return &GED{led: led.New(clock), sites: make(map[string]bool)}
}

// SetAutoRegister chooses the unknown-site policy for Signal: when on,
// a signal from an unregistered site registers the site (the original
// "sites may announce themselves by sending" behaviour); when off (the
// default), the signal is dropped and counted in SignalsRejected.
func (g *GED) SetAutoRegister(on bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.autoRegister = on
}

// Stats is a snapshot of the GED's signal-policy counters.
type Stats struct {
	// SignalsAccepted counts signals from registered sites fed to the LED.
	SignalsAccepted uint64
	// SignalsAutoRegistered counts signals that lazily registered their
	// site (auto-registration on).
	SignalsAutoRegistered uint64
	// SignalsRejected counts signals dropped because their site was not
	// registered (auto-registration off).
	SignalsRejected uint64
}

// Stats returns the current counters.
func (g *GED) Stats() Stats {
	return Stats{
		SignalsAccepted:       g.sigAccepted.Load(),
		SignalsAutoRegistered: g.sigAutoReg.Load(),
		SignalsRejected:       g.sigRejected.Load(),
	}
}

// EnableMetrics registers the GED's counters (and its LED's detection
// instruments) in reg.
func (g *GED) EnableMetrics(reg *obs.Registry) {
	reg.CounterFunc("ged_signals_accepted_total",
		"Site signals from registered sites fed to the global LED.",
		func() float64 { return float64(g.sigAccepted.Load()) })
	reg.CounterFunc("ged_signals_auto_registered_total",
		"Site signals that lazily registered their site.",
		func() float64 { return float64(g.sigAutoReg.Load()) })
	reg.CounterFunc("ged_signals_rejected_total",
		"Site signals dropped because their site was not registered.",
		func() float64 { return float64(g.sigRejected.Load()) })
	g.led.EnableMetrics(reg)
}

// LED exposes the underlying detector (rules, deferred flushing).
func (g *GED) LED() *led.LED { return g.led }

// RegisterSite announces a participating site.
func (g *GED) RegisterSite(site string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.sites[site] {
		return fmt.Errorf("ged: site %q already registered", site)
	}
	g.sites[site] = true
	return nil
}

// DeclareSiteEvent pre-registers a site's event so global composites can
// reference it. Site events are also registered lazily on first Signal.
func (g *GED) DeclareSiteEvent(site, event string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.sites[site] {
		return fmt.Errorf("ged: site %q is not registered", site)
	}
	name := globalName(event, site)
	if g.led.HasEvent(name) {
		return nil
	}
	return g.led.DefinePrimitive(name)
}

// Signal injects one site's primitive event occurrence. Signals from
// unregistered sites are dropped unless auto-registration is enabled (see
// SetAutoRegister); either way the outcome is counted in Stats. Site
// events are still registered lazily on first signal — only the *site*
// has an explicit registration contract.
func (g *GED) Signal(site string, p led.Primitive) {
	name := globalName(p.Event, site)
	// Fast path: known site, known event — a shared lock suffices, so
	// concurrent site streams fan into the LED without serializing here.
	g.mu.RLock()
	known := g.sites[site] && g.led.HasEvent(name)
	g.mu.RUnlock()
	if !known && !g.registerSlow(site, name) {
		return
	}
	g.sigAccepted.Add(1)
	p.Event = name
	g.led.Signal(p)
}

// registerSlow is Signal's write path: first contact from a site (policy
// permitting) or a site event's lazy registration. Reports whether the
// signal may proceed.
func (g *GED) registerSlow(site, name string) bool {
	g.mu.Lock()
	if !g.sites[site] {
		if !g.autoRegister {
			g.mu.Unlock()
			g.sigRejected.Add(1)
			return false
		}
		g.sites[site] = true
		g.sigAutoReg.Add(1)
	}
	if !g.led.HasEvent(name) {
		_ = g.led.DefinePrimitive(name)
	}
	g.mu.Unlock()
	return true
}

// DefineGlobalEvent registers a named composite over site-qualified
// references: "addStk::siteA ^ delStk::siteB". Unqualified references are
// rejected — a global event must say which site each constituent comes
// from.
func (g *GED) DefineGlobalEvent(name, expr string) error {
	e, err := snoop.Parse(expr)
	if err != nil {
		return err
	}
	var walkErr error
	snoop.Walk(e, func(x snoop.Expr) {
		ref, ok := x.(*snoop.EventRef)
		if !ok || walkErr != nil {
			return
		}
		if ref.App == "" {
			walkErr = fmt.Errorf("ged: event %q must be site-qualified (event::site)", ref.Name)
			return
		}
		site, event := ref.App, ref.Name
		g.mu.Lock()
		if !g.sites[site] {
			g.mu.Unlock()
			walkErr = fmt.Errorf("ged: site %q is not registered", site)
			return
		}
		gn := globalName(event, site)
		if !g.led.HasEvent(gn) {
			_ = g.led.DefinePrimitive(gn)
		}
		g.mu.Unlock()
		ref.Name, ref.App = gn, ""
	})
	if walkErr != nil {
		return walkErr
	}
	return g.led.DefineComposite(name, e)
}

// AddRule attaches a rule to a global event.
func (g *GED) AddRule(r *led.Rule) error { return g.led.AddRule(r) }

// DropRule detaches a rule.
func (g *GED) DropRule(name string) error { return g.led.DropRule(name) }

// Wait blocks until detached rule executions complete.
func (g *GED) Wait() { g.led.Wait() }

// --- wire transport ---

// Datagram format forwarded by agents: GED1|site|event|table|op|vno.

// ForwardMessage encodes one occurrence for UDP forwarding.
func ForwardMessage(site string, p led.Primitive) string {
	return fmt.Sprintf("GED1|%s|%s|%s|%s|%d", site, p.Event, p.Table, p.Op, p.VNo)
}

// parseForward decodes a forwarded occurrence.
func parseForward(msg string) (site string, p led.Primitive, err error) {
	parts := strings.Split(strings.TrimSpace(msg), "|")
	if len(parts) != 6 || parts[0] != "GED1" {
		return "", led.Primitive{}, fmt.Errorf("ged: malformed datagram %q", msg)
	}
	vno := 0
	for _, r := range parts[5] {
		if r < '0' || r > '9' {
			return "", led.Primitive{}, fmt.Errorf("ged: bad vNo in %q", msg)
		}
		vno = vno*10 + int(r-'0')
	}
	return parts[1], led.Primitive{Event: parts[2], Table: parts[3], Op: parts[4], VNo: vno}, nil
}

// Listen binds a UDP socket that accepts forwarded occurrences from remote
// agents.
func (g *GED) Listen(addr string) error {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return err
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return err
	}
	g.mu.Lock()
	g.conn = conn
	g.mu.Unlock()
	g.wg.Add(1)
	go g.listen(conn)
	return nil
}

// Addr returns the bound UDP address, or "".
func (g *GED) Addr() string {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.conn == nil {
		return ""
	}
	return g.conn.LocalAddr().String()
}

func (g *GED) listen(conn *net.UDPConn) {
	defer g.wg.Done()
	buf := make([]byte, 64<<10)
	for {
		n, _, err := conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		site, p, err := parseForward(string(buf[:n]))
		if err != nil {
			continue
		}
		g.Signal(site, p)
	}
}

// Close stops the UDP listener and waits for detached rules.
func (g *GED) Close() {
	g.mu.Lock()
	conn := g.conn
	g.conn = nil
	g.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	g.wg.Wait()
	g.led.Wait()
}

// Forwarder returns a function an agent can use to forward every locally
// detected primitive occurrence to a GED over UDP.
func Forwarder(site, gedAddr string) (func(p led.Primitive) error, error) {
	conn, err := net.Dial("udp", gedAddr)
	if err != nil {
		return nil, err
	}
	return func(p led.Primitive) error {
		_, err := conn.Write([]byte(ForwardMessage(site, p)))
		return err
	}, nil
}
