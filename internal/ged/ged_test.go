package ged

import (
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/activedb/ecaagent/internal/agent"
	"github.com/activedb/ecaagent/internal/catalog"
	"github.com/activedb/ecaagent/internal/engine"
	"github.com/activedb/ecaagent/internal/led"
)

func TestGlobalNameAndForwardRoundTrip(t *testing.T) {
	p := led.Primitive{Event: "db.u.addStk", Table: "db.u.stock", Op: "insert", VNo: 7}
	msg := ForwardMessage("siteA", p)
	site, got, err := parseForward(msg)
	if err != nil || site != "siteA" || got.Event != p.Event || got.VNo != 7 {
		t.Errorf("round trip: %v %+v %v", site, got, err)
	}
	for _, bad := range []string{"", "GED1|a|b", "XXX|a|b|c|d|1", "GED1|a|b|c|d|x"} {
		if _, _, err := parseForward(bad); err == nil {
			t.Errorf("parseForward(%q) succeeded", bad)
		}
	}
}

func TestGlobalCompositeDetection(t *testing.T) {
	g := New(led.NewManualClock(time.Unix(0, 0)))
	for _, s := range []string{"ny", "sf"} {
		if err := g.RegisterSite(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.RegisterSite("ny"); err == nil {
		t.Error("duplicate site accepted")
	}
	if err := g.DeclareSiteEvent("ny", "addStk"); err != nil {
		t.Fatal(err)
	}
	if err := g.DeclareSiteEvent("ny", "addStk"); err != nil {
		t.Fatal("redeclare should be idempotent")
	}
	if err := g.DeclareSiteEvent("mars", "x"); err == nil {
		t.Error("event on unregistered site accepted")
	}

	if err := g.DefineGlobalEvent("crossSite", "addStk::ny ^ addStk::sf"); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var occs []*led.Occ
	err := g.AddRule(&led.Rule{
		Name: "r", Event: "crossSite", Context: led.Chronicle,
		Action: func(o *led.Occ) { mu.Lock(); occs = append(occs, o); mu.Unlock() },
	})
	if err != nil {
		t.Fatal(err)
	}

	g.Signal("ny", led.Primitive{Event: "addStk", Table: "t", Op: "insert", VNo: 1, At: time.Unix(1, 0)})
	if len(occs) != 0 {
		t.Fatal("fired with one site only")
	}
	g.Signal("sf", led.Primitive{Event: "addStk", Table: "t", Op: "insert", VNo: 2, At: time.Unix(2, 0)})
	mu.Lock()
	defer mu.Unlock()
	if len(occs) != 1 {
		t.Fatalf("global AND fired %d times", len(occs))
	}
	names := []string{occs[0].Constituents[0].Event, occs[0].Constituents[1].Event}
	if names[0] != "addStk::ny" || names[1] != "addStk::sf" {
		t.Errorf("constituents: %v", names)
	}
}

func TestDefineGlobalEventValidation(t *testing.T) {
	g := New(led.NewManualClock(time.Unix(0, 0)))
	_ = g.RegisterSite("a")
	if err := g.DefineGlobalEvent("bad", "addStk ^ delStk"); err == nil ||
		!strings.Contains(err.Error(), "site-qualified") {
		t.Errorf("unqualified refs accepted: %v", err)
	}
	if err := g.DefineGlobalEvent("bad2", "addStk::nowhere"); err == nil {
		t.Error("unknown site accepted")
	}
	if err := g.DefineGlobalEvent("bad3", "not valid ("); err == nil {
		t.Error("garbage expression accepted")
	}
}

func TestSignalRejectsUnregisteredSiteByDefault(t *testing.T) {
	g := New(led.NewManualClock(time.Unix(0, 0)))
	// Default policy: an unknown site's signal is dropped and counted —
	// RegisterSite's "already registered" error contract means sites are
	// explicit, so Signal must not invent them silently.
	g.Signal("stranger", led.Primitive{Event: "e", At: time.Unix(1, 0)})
	if g.LED().HasEvent("e::stranger") {
		t.Error("unregistered site's event was defined")
	}
	if st := g.Stats(); st.SignalsRejected != 1 || st.SignalsAccepted != 0 || st.SignalsAutoRegistered != 0 {
		t.Errorf("stats after rejection: %+v", st)
	}
	// A registered site's signal is accepted, and its event still
	// registers lazily (only the site has a registration contract).
	if err := g.RegisterSite("known"); err != nil {
		t.Fatal(err)
	}
	g.Signal("known", led.Primitive{Event: "e", At: time.Unix(2, 0)})
	if !g.LED().HasEvent("e::known") {
		t.Error("registered site's event not lazily defined")
	}
	if st := g.Stats(); st.SignalsAccepted != 1 || st.SignalsRejected != 1 {
		t.Errorf("stats after accept: %+v", st)
	}
}

func TestSignalAutoRegisterOptIn(t *testing.T) {
	g := New(led.NewManualClock(time.Unix(0, 0)))
	g.SetAutoRegister(true)
	// Opt-in restores the original behaviour: the site announces itself by
	// sending, and the signal is both auto-registered and accepted.
	g.Signal("lazy", led.Primitive{Event: "e", At: time.Unix(1, 0)})
	if !g.LED().HasEvent("e::lazy") {
		t.Error("lazy registration failed")
	}
	if st := g.Stats(); st.SignalsAutoRegistered != 1 || st.SignalsAccepted != 1 || st.SignalsRejected != 0 {
		t.Errorf("stats: %+v", st)
	}
	// The site is now registered for real: RegisterSite refuses it, and a
	// second signal is a plain accept (no second auto-registration).
	if err := g.RegisterSite("lazy"); err == nil {
		t.Error("auto-registered site not visible to RegisterSite")
	}
	g.Signal("lazy", led.Primitive{Event: "e", At: time.Unix(2, 0)})
	if st := g.Stats(); st.SignalsAutoRegistered != 1 || st.SignalsAccepted != 2 {
		t.Errorf("stats after second signal: %+v", st)
	}
}

// TestTwoAgentsOneGED wires two complete agents (each fronting its own SQL
// server engine) to a GED over UDP — the full distributed deployment of
// the paper's future work.
func TestTwoAgentsOneGED(t *testing.T) {
	g := New(nil)
	if err := g.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	for _, s := range []string{"ny", "sf"} {
		if err := g.RegisterSite(s); err != nil {
			t.Fatal(err)
		}
	}

	quiet := func(string, ...any) {}
	mkSite := func(site string) (*agent.Agent, *agent.ClientSession) {
		t.Helper()
		eng := engine.New(catalog.New())
		fwd, err := Forwarder(site, g.Addr())
		if err != nil {
			t.Fatal(err)
		}
		a, err := agent.New(agent.Config{
			Dial:       agent.LocalDialer(eng),
			NotifyAddr: "-",
			Logf:       quiet,
			Forward:    func(p led.Primitive) { _ = fwd(p) },
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(a.Close)
		eng.SetNotifier(func(h string, p int, msg string) error { a.Deliver(msg); return nil })
		seed := eng.NewSession("ops")
		if _, err := seed.ExecScript("create database trading use trading create table stock (symbol varchar(10), price float null)"); err != nil {
			t.Fatal(err)
		}
		cs, err := a.NewClientSession("ops", "trading")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cs.Close() })
		if _, err := cs.Exec("create trigger t_add on stock for insert event addStk as print 'local'"); err != nil {
			t.Fatal(err)
		}
		return a, cs
	}

	_, csNY := mkSite("ny")
	_, csSF := mkSite("sf")

	if err := g.DefineGlobalEvent("bothCoasts", "trading.ops.addStk::ny ^ trading.ops.addStk::sf"); err != nil {
		t.Fatal(err)
	}
	fired := make(chan *led.Occ, 1)
	err := g.AddRule(&led.Rule{
		Name: "global", Event: "bothCoasts", Context: led.Recent,
		Action: func(o *led.Occ) {
			select {
			case fired <- o:
			default:
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := csNY.Exec("insert stock values ('IBM', 100)"); err != nil {
		t.Fatal(err)
	}
	if _, err := csSF.Exec("insert stock values ('IBM', 101)"); err != nil {
		t.Fatal(err)
	}

	select {
	case occ := <-fired:
		if len(occ.Constituents) != 2 {
			t.Errorf("global occurrence: %+v", occ)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("global event never detected")
	}
}

// TestConcurrentSiteFanIn drives many sites into the GED at once: the
// shared-lock fast path plus the sharded global LED must accept every
// signal exactly once, with each site's global composite detecting its own
// occurrences independently.
func TestConcurrentSiteFanIn(t *testing.T) {
	g := New(led.NewManualClock(time.Unix(0, 0)))
	const (
		sites   = 6
		perSite = 40
	)
	var (
		mu    sync.Mutex
		fired = make(map[string]int)
	)
	for i := 0; i < sites; i++ {
		site := siteName(i)
		if err := g.RegisterSite(site); err != nil {
			t.Fatal(err)
		}
		if err := g.DeclareSiteEvent(site, "tick"); err != nil {
			t.Fatal(err)
		}
		if err := g.DefineGlobalEvent("g_"+site, "tick::"+site); err != nil {
			t.Fatal(err)
		}
		if err := g.AddRule(&led.Rule{
			Name: "r_" + site, Event: "g_" + site, Context: led.Chronicle,
			Action: func(o *led.Occ) {
				mu.Lock()
				fired[o.Constituents[0].Event]++
				mu.Unlock()
			},
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Each site's events live in their own shard of the global LED.
	shardSet := make(map[int]bool)
	for i := 0; i < sites; i++ {
		shardSet[g.LED().ShardID(globalName("tick", siteName(i)))] = true
	}
	if len(shardSet) != sites {
		t.Fatalf("site components share shards: %d distinct, want %d", len(shardSet), sites)
	}

	var wg sync.WaitGroup
	base := time.Unix(0, 0)
	for i := 0; i < sites; i++ {
		wg.Add(1)
		go func(site string) {
			defer wg.Done()
			for v := 1; v <= perSite; v++ {
				g.Signal(site, led.Primitive{
					Event: "tick", Table: "t", Op: "insert", VNo: v,
					At: base.Add(time.Duration(v) * time.Millisecond),
				})
			}
		}(siteName(i))
	}
	wg.Wait()
	g.Wait()

	st := g.Stats()
	if st.SignalsAccepted != sites*perSite {
		t.Errorf("SignalsAccepted = %d, want %d", st.SignalsAccepted, sites*perSite)
	}
	if st.SignalsRejected != 0 {
		t.Errorf("SignalsRejected = %d, want 0", st.SignalsRejected)
	}
	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < sites; i++ {
		name := globalName("tick", siteName(i))
		if fired[name] != perSite {
			t.Errorf("site %d fired %d rules, want %d", i, fired[name], perSite)
		}
	}
}

func siteName(i int) string { return string(rune('A'+i)) + "site" }
