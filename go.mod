module github.com/activedb/ecaagent

go 1.22
