package main

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/activedb/ecaagent/internal/agent"
	"github.com/activedb/ecaagent/internal/led"
)

// This file is the ISSUE 7 performance surface: the GOMAXPROCS-matrixed
// sharding ablation plus a set of gated micro-benchmarks of the signal hot
// path, written to BENCH_PR7.json (-exp matrix), and the regression gate
// that compares a fresh run of the gated set against that committed
// baseline (-exp gate, `make bench-gate`).
//
// The gate's sharp edge is allocs/op: it is machine-independent and must
// never increase. ns/op is gated with a threshold generous enough to
// absorb host variance (10% locally, 25% in CI), so it catches collapses,
// not jitter.

// gateBaselinePath / gateThreshold back the -gate-baseline and
// -gate-threshold flags (main.go).
var (
	gateBaselinePath string
	gateThreshold    float64
)

// gatedMetric is one gated micro-benchmark measurement.
type gatedMetric struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// matrixLeg is the sharding ablation at one GOMAXPROCS setting.
type matrixLeg struct {
	GoMaxProcs int                `json:"go_max_procs"`
	Results    []parallelResult   `json:"results"`
	Speedups   map[string]float64 `json:"speedups"`
}

// bench7Report is the BENCH_PR7.json document.
type bench7Report struct {
	Bench         string                 `json:"bench"`
	GoVersion     string                 `json:"go_version"`
	NumCPU        int                    `json:"num_cpu"`
	Reps          int                    `json:"reps"`
	SignalsPerSet int                    `json:"signals_per_set"`
	Matrix        []matrixLeg            `json:"matrix"`
	Gated         map[string]gatedMetric `json:"gated"`
	// CalibrationNs is the host-speed probe (calibrate) measured alongside
	// the gated set. The gate re-measures it and scales the baseline's
	// ns/op by the ratio, so systematic host drift — a slower CI runner, a
	// noisy neighbor — cancels out of the comparison instead of tripping
	// the threshold. allocs/op needs no such normalization.
	CalibrationNs float64 `json:"calibration_ns"`
	// ShardParitySets8 pins the sets=8 sharded/single-lock ratio (best of
	// parallelReps) that BENCH_PR3.json once recorded as a regression; the
	// gate holds it above shardParityFloor.
	ShardParitySets8 float64 `json:"shard_parity_sets8"`
	Note             string  `json:"note"`
}

// shardParityFloor is the minimum acceptable sets=8 sharded/single-lock
// throughput ratio. Best-of-reps parity on one core sits at ~1.0 (the
// single-run 0.98 in BENCH_PR3.json was sampling noise); 0.80 leaves room
// for host variance while still catching a real sharding regression.
const shardParityFloor = 0.80

// matrixProcs returns the GOMAXPROCS legs to measure: 1, 2, 4 and the
// host's core count, deduplicated, capped at NumCPU (legs above the core
// count measure scheduler thrash, not parallelism).
func matrixProcs() []int {
	seen := map[int]bool{}
	var procs []int
	for _, p := range []int{1, 2, 4, runtime.NumCPU()} {
		if p > runtime.NumCPU() || seen[p] {
			continue
		}
		seen[p] = true
		procs = append(procs, p)
	}
	sort.Ints(procs)
	return procs
}

// expMatrix measures the sharding ablation at every GOMAXPROCS leg plus
// the gated micro-benchmark set, and writes BENCH_PR7.json when
// -bench-json is given.
func expMatrix(w io.Writer) error {
	const perSet = 30000
	report := bench7Report{
		Bench:         "zero-allocation signal hot path + GOMAXPROCS-matrixed sharding ablation",
		GoVersion:     runtime.Version(),
		NumCPU:        runtime.NumCPU(),
		Reps:          parallelReps,
		SignalsPerSet: perSet,
		Note: "each matrix cell is the best of reps runs; gated metrics feed `make bench-gate` " +
			"(allocs/op must never increase, ns/op within threshold)",
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, procs := range matrixProcs() {
		runtime.GOMAXPROCS(procs)
		fmt.Fprintf(w, "--- GOMAXPROCS=%d ---\n", procs)
		results, speedups, err := runParallelSweep(w, perSet, parallelReps)
		if err != nil {
			return err
		}
		report.Matrix = append(report.Matrix, matrixLeg{
			GoMaxProcs: procs, Results: results, Speedups: speedups,
		})
		if procs == 1 {
			report.ShardParitySets8 = speedups["sets=8"]
		}
	}
	if report.ShardParitySets8 == 0 && len(report.Matrix) > 0 {
		report.ShardParitySets8 = report.Matrix[0].Speedups["sets=8"]
	}
	fmt.Fprintf(w, "--- gated micro-benchmarks ---\n")
	report.Gated = runGatedBenchmarks(w)
	report.CalibrationNs = calibrate()
	fmt.Fprintf(w, "calibration: %.0f ns\n", report.CalibrationNs)
	fmt.Fprintf(w, "shard parity sets=8: %.2fx (floor %.2f)\n", report.ShardParitySets8, shardParityFloor)
	if benchJSONPath != "" {
		doc, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(benchJSONPath, append(doc, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", benchJSONPath)
	}
	return nil
}

// gatedBenchNames fixes the gated set and its order (iteration and
// reporting both use it; the gate fails on a missing name).
var gatedBenchNames = []string{
	"signal_warm",
	"parse_text_line",
	"decode_text_batch16",
	"decode_binary_batch16",
	"encode_binary_batch16",
}

// runGatedBenchmarks measures the gated micro-benchmark set with the
// testing harness (calibrated iteration counts, allocation accounting)
// and prints one row per benchmark. Each benchmark runs parallelReps
// times and reports its fastest ns/op — scheduler and GC noise on a
// loaded host is strictly one-sided, so min-of-R is the stable estimator
// the thresholded gate needs (the same methodology produces the committed
// baseline, keeping the comparison honest).
func runGatedBenchmarks(w io.Writer) map[string]gatedMetric {
	out := make(map[string]gatedMetric, len(gatedBenchNames))
	for _, name := range gatedBenchNames {
		fn := gatedBench(name)
		if fn == nil {
			panic("ecabench: no body for gated benchmark " + name)
		}
		var m gatedMetric
		for rep := 0; rep < parallelReps; rep++ {
			res := testing.Benchmark(fn)
			ns := float64(res.T.Nanoseconds()) / float64(res.N)
			if rep == 0 || ns < m.NsPerOp {
				m.NsPerOp = ns
			}
			// Allocation counts are deterministic; take the worst seen so
			// a flaky extra allocation cannot hide behind the fastest rep.
			if a := res.AllocsPerOp(); rep == 0 || a > m.AllocsPerOp {
				m.AllocsPerOp = a
			}
			if bpo := res.AllocedBytesPerOp(); rep == 0 || bpo > m.BytesPerOp {
				m.BytesPerOp = bpo
			}
		}
		out[name] = m
		fmt.Fprintf(w, "%-24s %12.1f ns/op %6d allocs/op %8d B/op\n",
			name, m.NsPerOp, m.AllocsPerOp, m.BytesPerOp)
	}
	return out
}

// gatedBench returns the benchmark body for one gated metric (nil for an
// unknown name; bench7_test.go pins that every gatedBenchNames entry
// resolves).
func gatedBench(name string) func(b *testing.B) {
	switch name {
	case "signal_warm":
		// One warmed primitive through detection and an IMMEDIATE rule:
		// the Signal→detect hot path (budget: ≤2 allocs/op, see
		// internal/led/alloc_test.go).
		return func(b *testing.B) {
			l := led.New(led.NewManualClock(time.Unix(0, 0)))
			if err := l.DefinePrimitive("e"); err != nil {
				b.Fatal(err)
			}
			hits := 0
			if err := l.AddRule(&led.Rule{
				Name: "r", Event: "e", Context: led.Recent,
				Action: func(*led.Occ) { hits++ },
			}); err != nil {
				b.Fatal(err)
			}
			at := time.Unix(0, 0)
			for i := 1; i <= 1000; i++ {
				at = at.Add(time.Microsecond)
				l.Signal(led.Primitive{Event: "e", Op: "insert", VNo: i, At: at})
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				at = at.Add(time.Microsecond)
				l.Signal(led.Primitive{Event: "e", Op: "insert", VNo: 1000 + i, At: at})
			}
			if hits == 0 {
				b.Fatal("rule never fired")
			}
		}
	case "parse_text_line":
		return textDecodeBench([]byte("ECA1|db.u.ev|db.u.tbl|insert|42"), 1)
	case "decode_text_batch16":
		return textDecodeBench(textBatch(16), 16)
	case "decode_binary_batch16":
		return func(b *testing.B) {
			buf, err := agent.EncodeBinaryBatch(benchPrims(16))
			if err != nil {
				b.Fatal(err)
			}
			sink := 0
			emit := func(p led.Primitive) { sink += p.VNo }
			if _, err := agent.DecodeBinaryBatch(buf, emit); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := agent.DecodeBinaryBatch(buf, emit); err != nil {
					b.Fatal(err)
				}
			}
		}
	case "encode_binary_batch16":
		return func(b *testing.B) {
			prims := benchPrims(16)
			buf, err := agent.EncodeBinaryBatch(prims)
			if err != nil {
				b.Fatal(err)
			}
			dst := make([]byte, 0, 2*len(buf))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := agent.AppendBinaryBatch(dst[:0], prims); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	return nil
}

// textDecodeBench builds a decode benchmark over one text datagram that
// must contain want well-formed lines.
func textDecodeBench(datagram []byte, want int) func(b *testing.B) {
	return func(b *testing.B) {
		sink := 0
		emit := func(p led.Primitive) { sink += p.VNo }
		onErr := func(err error) { b.Fatalf("malformed benchmark datagram: %v", err) }
		agent.DecodeBatchBytes(datagram, emit, onErr)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if good, bad := agent.DecodeBatchBytes(datagram, emit, onErr); good != want || bad != 0 {
				b.Fatalf("decoded %d/%d, want %d/0", good, bad, want)
			}
		}
	}
}

func benchPrims(n int) []led.Primitive {
	prims := make([]led.Primitive, n)
	for i := range prims {
		prims[i] = led.Primitive{Event: "db.u.ev", Table: "db.u.tbl", Op: "insert", VNo: i + 1}
	}
	return prims
}

func textBatch(n int) []byte {
	var out []byte
	for i := 0; i < n; i++ {
		out = append(out, fmt.Sprintf("ECA1|db.u.ev|db.u.tbl|insert|%d\n", i+1)...)
	}
	return out
}

// expGate is the perf-regression gate: re-measure the gated set and the
// sets=8 shard parity, then compare against the committed BENCH_PR7.json
// baseline. Any allocs/op increase, an ns/op slowdown beyond the
// threshold, or parity under the floor fails the run (and with it `make
// check`).
func expGate(w io.Writer) error {
	raw, err := os.ReadFile(gateBaselinePath)
	if err != nil {
		return fmt.Errorf("gate: reading baseline: %w (run `make bench-matrix` to create it)", err)
	}
	var baseline bench7Report
	if err := json.Unmarshal(raw, &baseline); err != nil {
		return fmt.Errorf("gate: parsing baseline %s: %w", gateBaselinePath, err)
	}
	fmt.Fprintf(w, "baseline %s (%s), threshold %.0f%%\n", gateBaselinePath, baseline.GoVersion, gateThreshold*100)
	// The host's speed can shift between any two measurements on a busy
	// machine, so the probe brackets the benchmark block — before and
	// after — and the gate uses the slower reading: if either probe saw a
	// slow phase, the budget stretches accordingly.
	calBefore := calibrate()
	fresh := runGatedBenchmarks(w)
	calAfter := calibrate()
	cal := calBefore
	if calAfter > cal {
		cal = calAfter
	}
	scale := 1.0
	if baseline.CalibrationNs > 0 {
		scale = cal / baseline.CalibrationNs
		fmt.Fprintf(w, "calibration: %.0f ns vs baseline %.0f ns (host speed scale %.2fx)\n",
			cal, baseline.CalibrationNs, scale)
	}
	parity, err := measureShardParity()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "shard parity sets=8: %.2fx (floor %.2f)\n", parity, shardParityFloor)
	violations := compareGate(baseline.Gated, fresh, gateThreshold, scale)
	// Benchmark noise on a loaded host is one-sided (a measurement only
	// ever comes out slower than the code's true cost), so an apparent
	// ns/op breach gets up to gateRetries re-measurements of just the
	// breaching benchmarks, merging the minimum. Phantom violations wash
	// out; a real regression reproduces every time. allocs/op breaches
	// are deterministic and never retried away (the merge keeps the max).
	for attempt := 0; attempt < gateRetries && len(violations) > 0; attempt++ {
		fmt.Fprintf(w, "gate: %d violation(s), re-measuring (retry %d/%d)\n",
			len(violations), attempt+1, gateRetries)
		fresh = remeasureViolating(w, violations, fresh)
		violations = compareGate(baseline.Gated, fresh, gateThreshold, scale)
	}
	if parity < shardParityFloor {
		violations = append(violations, fmt.Sprintf(
			"shard parity sets=8: %.2fx below floor %.2fx", parity, shardParityFloor))
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintf(w, "GATE FAIL: %s\n", v)
		}
		return fmt.Errorf("gate: %d perf budget violation(s)", len(violations))
	}
	fmt.Fprintf(w, "gate: OK (%d metrics within budget)\n", len(gatedBenchNames))
	return nil
}

// gateRetries is how many times the gate re-measures benchmarks that
// breached their ns/op limit before believing the breach.
const gateRetries = 2

// remeasureViolating re-runs only the gated benchmarks named in the
// violations, merging the new measurement into fresh: minimum ns/op
// (noise is one-sided slow), maximum allocs/op and bytes/op (a real
// allocation never disappears by re-running).
func remeasureViolating(w io.Writer, violations []string, fresh map[string]gatedMetric) map[string]gatedMetric {
	for _, name := range gatedBenchNames {
		hit := false
		for _, v := range violations {
			if strings.HasPrefix(v, name+":") {
				hit = true
				break
			}
		}
		if !hit {
			continue
		}
		res := testing.Benchmark(gatedBench(name))
		m := fresh[name]
		if ns := float64(res.T.Nanoseconds()) / float64(res.N); ns < m.NsPerOp {
			m.NsPerOp = ns
		}
		if a := res.AllocsPerOp(); a > m.AllocsPerOp {
			m.AllocsPerOp = a
		}
		if bpo := res.AllocedBytesPerOp(); bpo > m.BytesPerOp {
			m.BytesPerOp = bpo
		}
		fresh[name] = m
		fmt.Fprintf(w, "%-24s %12.1f ns/op %6d allocs/op %8d B/op (remeasured)\n",
			name, m.NsPerOp, m.AllocsPerOp, m.BytesPerOp)
	}
	return fresh
}

// measureShardParity reruns just the sets=8 pair (best of parallelReps).
func measureShardParity() (float64, error) {
	const perSet = 30000
	single, err := runParallelBest("single-lock", led.Options{MaxShards: 1}, 8, perSet, parallelReps)
	if err != nil {
		return 0, err
	}
	sharded, err := runParallelBest("sharded", led.Options{}, 8, perSet, parallelReps)
	if err != nil {
		return 0, err
	}
	return sharded.PerSec / single.PerSec, nil
}

// compareGate is the pure comparator behind the gate: for every baseline
// metric, allocs/op must not increase at all and ns/op must stay within
// (1+threshold)× the baseline after scaling it by the host-speed ratio
// (scale > 1 means this host currently runs the calibration workload
// slower than the baseline host did, so the ns/op budget stretches by the
// same factor). Scale is clamped to ≥ 1: calibration exists to stop a
// slower host from tripping phantom regressions, and must only ever
// loosen the comparison — a probe that happens to catch the host in a
// fast phase would otherwise tighten every limit below the raw
// threshold and fail runs whose benchmarks are unchanged (observed:
// scale 0.71 failing all five metrics at ±5% real movement). Returns
// one violation string per breach.
func compareGate(baseline, fresh map[string]gatedMetric, threshold, scale float64) []string {
	if scale < 1 {
		scale = 1
	}
	var violations []string
	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base := baseline[name]
		got, ok := fresh[name]
		if !ok {
			violations = append(violations, fmt.Sprintf("%s: missing from fresh run", name))
			continue
		}
		if got.AllocsPerOp > base.AllocsPerOp {
			violations = append(violations, fmt.Sprintf(
				"%s: allocs/op rose %d -> %d (no increase allowed)",
				name, base.AllocsPerOp, got.AllocsPerOp))
		}
		if limit := base.NsPerOp * scale * (1 + threshold); got.NsPerOp > limit {
			violations = append(violations,
				nsViolation(name, base.NsPerOp, got.NsPerOp, limit, threshold, scale))
		}
	}
	return violations
}

// nsViolation renders one ns/op breach. The verb reports the TRUE
// direction of movement against the raw baseline — a breach of the scaled
// limit can coincide with a raw decrease (e.g. a baseline recorded on a
// slower host), and the old hardcoded "rose" printed nonsense like
// "ns/op rose 1955.4 -> 1849.6". The scaled limit that was actually
// breached is always printed. The "name:" prefix is load-bearing:
// remeasureViolating matches violations to benchmarks by it.
func nsViolation(name string, base, got, limit, threshold, scale float64) string {
	verb := "rose"
	switch {
	case got < base:
		verb = "fell"
	case got == base:
		verb = "held"
	}
	return fmt.Sprintf(
		"%s: ns/op %s %.1f -> %.1f, above scaled limit %.1f (baseline %.1f %+.0f%% at host scale %.2fx)",
		name, verb, base, got, limit, base, threshold*100, scale)
}

// calibrate measures the host's current effective single-thread speed:
// a fixed mixed workload (map probes over interned-style strings plus a
// CRC sweep, roughly the hot path's instruction mix), min of five runs.
// Units are arbitrary — only the ratio between two calibrate() results on
// the same build matters.
func calibrate() float64 {
	buf := make([]byte, 32<<10)
	for i := range buf {
		buf[i] = byte(i * 131)
	}
	table := make(map[string]int, 256)
	keys := make([]string, 256)
	for i := range keys {
		keys[i] = fmt.Sprintf("db.user.event%03d", i)
		table[keys[i]] = i
	}
	best := 0.0
	sink := 0
	for rep := 0; rep < 5; rep++ {
		start := time.Now()
		for round := 0; round < 200; round++ {
			for _, k := range keys {
				sink += table[k]
			}
			sink += int(crc32.ChecksumIEEE(buf))
		}
		ns := float64(time.Since(start).Nanoseconds())
		if best == 0 || ns < best {
			best = ns
		}
	}
	if sink == 42 {
		fmt.Fprint(io.Discard, sink) // defeat dead-code elimination
	}
	return best
}
