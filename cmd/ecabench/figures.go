package main

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"github.com/activedb/ecaagent/internal/agent"
	"github.com/activedb/ecaagent/internal/catalog"
	"github.com/activedb/ecaagent/internal/engine"
	"github.com/activedb/ecaagent/internal/snoop"
	"github.com/activedb/ecaagent/internal/sqlparse"
)

// rig is an in-process deployment used to regenerate the paper's figures
// from the live system.
type rig struct {
	eng   *engine.Engine
	agent *agent.Agent
	cs    *agent.ClientSession
}

func newRig() (*rig, error) {
	eng := engine.New(catalog.New())
	a, err := agent.New(agent.Config{
		Dial:       agent.LocalDialer(eng),
		NotifyAddr: "-",
		Logf:       func(string, ...any) {},
	})
	if err != nil {
		return nil, err
	}
	eng.SetNotifier(func(h string, p int, msg string) error { a.Deliver(msg); return nil })
	seed := eng.NewSession("sharma")
	if _, err := seed.ExecScript(`create database sentineldb
use sentineldb
create table stock (symbol varchar(10), price float null)`); err != nil {
		a.Close()
		return nil, err
	}
	cs, err := a.NewClientSession("sharma", "sentineldb")
	if err != nil {
		a.Close()
		return nil, err
	}
	return &rig{eng: eng, agent: a, cs: cs}, nil
}

func (r *rig) close() {
	r.cs.Close()
	r.agent.Close()
}

// figures maps figure ids to their regeneration functions.
var figures = map[string]struct {
	title string
	fn    func(w io.Writer) error
}{
	"1":     {"Architecture of Mediated Approach", figure1},
	"2":     {"Architecture of an ECA agent", figure2},
	"3":     {"Control Flow for Creating ECA Rules", figure3},
	"4":     {"Control Flow of Event notification and Action", figure4},
	"5":     {"Schema of SysPrimitiveEvent Table", schemaFigure(agent.TabPrimitiveEvent)},
	"6":     {"Schema of SysCompositeEvent Table", schemaFigure(agent.TabCompositeEvent)},
	"7":     {"Schema of SysEcaTrigger Table", schemaFigure(agent.TabEcaTrigger)},
	"8":     {"Implementation of the Persistent Manager", figure8},
	"9":     {"Syntax of Primitive Event Definition", figure9},
	"10":    {"Syntax of Defining a Trigger on Existing Event", figure10},
	"11":    {"Code Generation for the Primitive Trigger (Example 1)", figure11},
	"12":    {"Syntax of Composite Event Definition", figure12},
	"13":    {"Structure of NotiStr", figure13},
	"14":    {"Stored procedure for Example 2", figure14},
	"15":    {"Workflow of Event Notifier", figure15},
	"16":    {"Action Handler", figure16},
	"17":    {"Structure of Table sysContext", schemaFigure(agent.TabContext)},
	"snoop": {"Snoop BNF coverage (§2.1)", figureSnoop},
	"graph": {"Event graph of the Example 1+2 rulebase (Graphviz DOT)", figureGraph},
	"limits": {"Native trigger limitations (§2.2) and how the agent lifts them",
		figureLimits},
}

func figureIDs() []string {
	ids := make([]string, 0, len(figures))
	for id := range figures {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		a, b := ids[i], ids[j]
		an, aerr := atoi(a)
		bn, berr := atoi(b)
		switch {
		case aerr == nil && berr == nil:
			return an < bn
		case aerr == nil:
			return true
		case berr == nil:
			return false
		default:
			return a < b
		}
	})
	return ids
}

func atoi(s string) (int, error) {
	n := 0
	for _, r := range s {
		if r < '0' || r > '9' {
			return 0, fmt.Errorf("not a number")
		}
		n = n*10 + int(r-'0')
	}
	if s == "" {
		return 0, fmt.Errorf("empty")
	}
	return n, nil
}

func schemaFigure(table string) func(io.Writer) error {
	return func(w io.Writer) error {
		out, err := agent.FigureSchema(table)
		if err != nil {
			return err
		}
		_, err = io.WriteString(w, out)
		return err
	}
}

func figure1(w io.Writer) error {
	r, err := newRig()
	if err != nil {
		return err
	}
	defer r.close()
	fmt.Fprintln(w, "clients  <-- tds -->  ECA Agent (gateway)  <-- tds -->  SQL Server")
	fmt.Fprintln(w, "                          ^                                |")
	fmt.Fprintln(w, "                          +------- UDP notifications ------+")
	fmt.Fprintln(w, "")
	fmt.Fprintln(w, "Transparency demonstration: the same statement through the agent and")
	fmt.Fprintln(w, "directly against the server yields identical results.")
	if _, err := r.cs.Exec("insert stock values ('IBM', 100.5)"); err != nil {
		return err
	}
	viaAgent, err := r.cs.Query("select symbol, price from stock")
	if err != nil {
		return err
	}
	direct := r.eng.NewSession("sharma")
	_ = direct.Use("sentineldb")
	directRes, err := direct.ExecScript("select symbol, price from stock")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nvia agent:\n%s\ndirect:\n%s", viaAgent.Format(), directRes[0].Format())
	if viaAgent.Format() == directRes[0].Format() {
		fmt.Fprintln(w, "MATCH: the mediator is transparent")
	} else {
		fmt.Fprintln(w, "MISMATCH")
	}
	return nil
}

func figure2(w io.Writer) error {
	modules := []struct{ name, impl, role string }{
		{"General Interface (Gateway Open Server)", "internal/agent/gateway.go", "same wire protocol on both sides; pass-through"},
		{"Language Filter", "ClientSession.Exec", "classifies batches: ECA command vs ordinary SQL"},
		{"ECA Parser", "internal/agent/ecaparse.go + codegen.go", "parses Figures 9/10/12 syntax; generates server SQL"},
		{"Local Event Detector (LED)", "internal/led", "Snoop event graph; contexts; couplings"},
		{"Persistent Manager", "internal/agent/persist.go", "system tables; persistence; recovery"},
		{"Event Notifier", "internal/agent/notifier.go", "UDP listener; decodes; signals the LED"},
		{"Action Handler", "internal/agent/action.go", "goroutine per action; sysContext; executes procs"},
	}
	fmt.Fprintf(w, "%-42s %-38s %s\n", "Module (Figure 2)", "Implementation", "Role")
	for _, m := range modules {
		fmt.Fprintf(w, "%-42s %-38s %s\n", m.name, m.impl, m.role)
	}
	return nil
}

func figure3(w io.Writer) error {
	r, err := newRig()
	if err != nil {
		return err
	}
	defer r.close()
	cmd := `create trigger t_addStk on stock for insert
event addStk
as print 'trigger t_addStk on primitive event addStk occurs'`
	fmt.Fprintln(w, "Client command:")
	fmt.Fprintln(w, cmd)
	fmt.Fprintln(w, "\nStep 1-2: command enters the Gateway and is forwarded to the Language Filter")
	fmt.Fprintf(w, "Step 3:   Language Filter classifies it: ECA command = %v\n", agent.IsECACreateTrigger(cmd))
	fmt.Fprintln(w, "Step 4-5: ECA Parser validates, creates the event graph in the LED, and")
	fmt.Fprintln(w, "          sends generated SQL to the server; Persistent Manager stores the rule")
	results, err := r.cs.Exec(cmd)
	if err != nil {
		return err
	}
	for _, rs := range results {
		for _, m := range rs.Messages {
			fmt.Fprintf(w, "Step 6:   result returned to client: %q\n", m)
		}
	}
	fmt.Fprintf(w, "Step 7:   persisted state: events=%v triggers=%v\n", r.agent.Events(), r.agent.Triggers())
	rs, err := r.cs.Query("select eventName, tableName, operation, vNo from SysPrimitiveEvent")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nSysPrimitiveEvent after creation:\n%s", rs.Format())
	return nil
}

func figure4(w io.Writer) error {
	r, err := newRig()
	if err != nil {
		return err
	}
	defer r.close()
	if _, err := r.cs.Exec(`create trigger t_addStk on stock for insert
event addStk
as print 'trigger t_addStk on primitive event addStk occurs'`); err != nil {
		return err
	}
	fmt.Fprintln(w, "Step 1: client sends DML through the gateway:   insert stock values ('IBM', 101)")
	if _, err := r.cs.Exec("insert stock values ('IBM', 101)"); err != nil {
		return err
	}
	fmt.Fprintln(w, "Step 2: the native trigger fires in the server and sends a UDP notification")
	fmt.Fprintln(w, "Step 3: the Event Notifier decodes it and signals the LED")
	fmt.Fprintln(w, "Step 4: the LED detects the event occurrence and invokes the Action Handler")
	select {
	case res := <-r.agent.ActionDone:
		fmt.Fprintf(w, "Step 5: the Action Handler executed %s\n", res.Rule)
		fmt.Fprintf(w, "Step 6: action output returned: %v\n", res.Messages)
	case <-time.After(5 * time.Second):
		return fmt.Errorf("rule never fired")
	}
	return nil
}

func figure8(w io.Writer) error {
	eng := engine.New(catalog.New())
	quiet := func(string, ...any) {}
	a1, err := agent.New(agent.Config{Dial: agent.LocalDialer(eng), NotifyAddr: "-", Logf: quiet})
	if err != nil {
		return err
	}
	eng.SetNotifier(func(h string, p int, msg string) error { a1.Deliver(msg); return nil })
	seed := eng.NewSession("sharma")
	if _, err := seed.ExecScript("create database sentineldb use sentineldb create table stock (symbol varchar(10), price float null)"); err != nil {
		return err
	}
	cs, err := a1.NewClientSession("sharma", "sentineldb")
	if err != nil {
		return err
	}
	for _, sql := range []string{
		"create trigger t_add on stock for insert event addStk as print 'a'",
		"create trigger t_del on stock for delete event delStk as print 'd'",
		"create trigger t_and event addDel = addStk ^ delStk as print 'x'",
	} {
		if _, err := cs.Exec(sql); err != nil {
			return err
		}
	}
	cs.Close()
	fmt.Fprintln(w, "The Persistent Manager runs on a dedicated privileged connection (Fig 8).")
	fmt.Fprintf(w, "Before restart: events=%d triggers=%d\n", len(a1.Events()), len(a1.Triggers()))
	a1.Close()

	start := time.Now()
	a2, err := agent.New(agent.Config{Dial: agent.LocalDialer(eng), NotifyAddr: "-", Logf: quiet})
	if err != nil {
		return err
	}
	defer a2.Close()
	fmt.Fprintf(w, "After restart (recovery from system tables in %v):\n", time.Since(start).Round(time.Microsecond))
	fmt.Fprintf(w, "  events   = %v\n", a2.Events())
	fmt.Fprintf(w, "  triggers = %v\n", a2.Triggers())
	return nil
}

func figure9(w io.Writer) error {
	fmt.Fprintln(w, `create trigger [owner.] trigger_name
on [owner.] table_name
for operation
event event_name [coupling_mode] [parameter_context] [priority]
as SQL_statements

operation         := insert | delete | update
parameter_context := RECENT | CHRONICLE | CONTINUOUS | CUMULATIVE
coupling_mode     := IMMEDIATE | DEFERED | DETACHED
priority          := positive integer`)
	fmt.Fprintln(w, "\nAccepted example (parsed by the live ECA parser):")
	def, err := agent.ParseECATrigger("create trigger t_addStk on stock for insert event addStk as print 'x'")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  trigger=%v table=%v op=%s event=%s coupling=%s context=%s priority=%d\n",
		def.TriggerName, def.TableName, def.Operation, def.EventName, def.Coupling, def.Context, def.Priority)
	return nil
}

func figure10(w io.Writer) error {
	fmt.Fprintln(w, `create trigger [owner.] trigger_name
event event_name [coupling_mode] [parameter_context] [priority]
as SQL_statements`)
	def, err := agent.ParseECATrigger("create trigger t2 event addStk CUMULATIVE 5 as select count(*) from stock")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nAccepted example: trigger=%v event=%s context=%s priority=%d (no new event defined: %v)\n",
		def.TriggerName, def.EventName, def.Context, def.Priority, !def.DefinesEvent())
	return nil
}

func figure11(w io.Writer) error {
	r, err := newRig()
	if err != nil {
		return err
	}
	defer r.close()
	fmt.Fprintln(w, "Example 1 input:")
	fmt.Fprintln(w, "  create trigger t_addStk on stock for insert event addStk")
	fmt.Fprintln(w, "  as print 'trigger t_addStk on primitive event addStk occurs'")
	fmt.Fprintln(w, "     select * from stock")
	fmt.Fprintln(w, "\nGenerated server SQL (regenerated live):")
	fmt.Fprintln(w, strings.Repeat("-", 72))
	batches := agent.GenPrimitiveEventSQL("sentineldb.sharma.addStk", "sentineldb.sharma.stock",
		sqlparse.OpInsert, "128.227.205.215", 10006)
	for i, b := range batches {
		fmt.Fprintf(w, "/* batch %d */\n%s\ngo\n", i+1, b)
	}
	fmt.Fprintln(w, strings.Repeat("-", 72))
	fmt.Fprintln(w, "Deviation from the paper's Figure 11: the trailing 'execute <proc>' moves")
	fmt.Fprintln(w, "from the native trigger into the Action Handler (via the LED), so that")
	fmt.Fprintln(w, "multiple triggers per event, contexts and couplings work for primitive")
	fmt.Fprintln(w, "events too. The scratch 'Version' table is replaced by reading vNo from")
	fmt.Fprintln(w, "SysPrimitiveEvent directly (equivalent, one less race).")
	return nil
}

func figure12(w io.Writer) error {
	fmt.Fprintln(w, `create trigger [owner.] trigger_name
event event_name [= Snoop_Event_exp]
[coupling_mode] [parameter_context] [priority]
as SQL_statements`)
	def, err := agent.ParseECATrigger("create trigger t_and event addDel = delStk ^ addStk RECENT as select symbol, price from stock.inserted")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nExample 2 parsed: event %s = %q, context %s\n", def.EventName, def.EventExpr, def.Context)
	return nil
}

func figure13(w io.Writer) error {
	fmt.Fprintln(w, "Paper's NotiStr (C struct):            This reproduction (Go):")
	fmt.Fprintln(w, "  char store_proc[MAX_PARA_LENGTH]       ActionParam.StoreProc string")
	fmt.Fprintln(w, "  char eventName[EVENT_NAME_LENGTH]      ActionParam.EventName string")
	fmt.Fprintln(w, "  char context[CONTEXT_LEN]              ActionParam.Context   led.Context")
	fmt.Fprintln(w, "  SRV_PROC *spp (thread ctrl struct)     ActionParam.DB        string +")
	fmt.Fprintln(w, "                                         ActionDone channel for result routing")
	return nil
}

func figure14(w io.Writer) error {
	proc := agent.GenActionProcSQL(
		"sentineldb.sharma.t_and__Proc",
		"RECENT",
		"print 'trigger t_and on composite event addDel = addStk ^ delStk'\nselect symbol, price from sentineldb.sharma.stock_inserted_tmp",
		[]agent.ShadowRef{{Table: "sentineldb.sharma.stock", Op: "inserted"}},
	)
	fmt.Fprintln(w, "Generated stored procedure for Example 2 (regenerated live):")
	fmt.Fprintln(w, strings.Repeat("-", 72))
	fmt.Fprintln(w, proc)
	fmt.Fprintln(w, strings.Repeat("-", 72))
	fmt.Fprintln(w, "Deviation: sysContext rows are keyed by the shadow table")
	fmt.Fprintln(w, "(stock_inserted) rather than the base table, because each event keeps its")
	fmt.Fprintln(w, "own vNo counter; the paper's base-table key can cross-match events.")
	return nil
}

func figure15(w io.Writer) error {
	r, err := newRig()
	if err != nil {
		return err
	}
	defer r.close()
	if _, err := r.cs.Exec("create trigger t on stock for insert event addStk as print 'fired'"); err != nil {
		return err
	}
	fmt.Fprintln(w, "Event Notifier workflow (Figure 15):")
	fmt.Fprintln(w, "  server trigger --syb_sendmsg/UDP--> Notification Listener --> Notifier --> LED")
	fmt.Fprintln(w, "\nLive trace: delivering a notification datagram by hand:")
	msg := "ECA1|sentineldb.sharma.addStk|sentineldb.sharma.stock|insert|1"
	fmt.Fprintf(w, "  datagram: %q\n", msg)
	r.agent.Deliver(msg)
	select {
	case res := <-r.agent.ActionDone:
		fmt.Fprintf(w, "  -> LED detected %s, action ran: %v\n", res.Event, res.Messages)
	case <-time.After(5 * time.Second):
		return fmt.Errorf("notification was not processed")
	}
	fmt.Fprintln(w, "  malformed datagrams are dropped without disturbing the agent:")
	r.agent.Deliver("garbage")
	fmt.Fprintln(w, "  -> delivered \"garbage\": agent still healthy")
	return nil
}

func figure16(w io.Writer) error {
	r, err := newRig()
	if err != nil {
		return err
	}
	defer r.close()
	for i, sql := range []string{
		"create trigger t1 on stock for insert event addStk as print 'rule one'",
		"create trigger t2 event addStk 10 as print 'rule two (priority 10)'",
	} {
		if _, err := r.cs.Exec(sql); err != nil {
			return fmt.Errorf("setup %d: %w", i, err)
		}
	}
	fmt.Fprintln(w, "Action Handler (Figure 16): one goroutine per SybaseAction call, FIFO")
	fmt.Fprintln(w, "tickets preserve priority order; each invokes its stored procedure")
	fmt.Fprintln(w, "through the gateway's upstream connection.")
	if _, err := r.cs.Exec("insert stock values ('X', 1)"); err != nil {
		return err
	}
	for i := 0; i < 2; i++ {
		select {
		case res := <-r.agent.ActionDone:
			fmt.Fprintf(w, "  action %d: rule=%s output=%v\n", i+1, res.Rule, res.Messages)
		case <-time.After(5 * time.Second):
			return fmt.Errorf("action %d never completed", i+1)
		}
	}
	return nil
}

func figureSnoop(w io.Writer) error {
	fmt.Fprintln(w, "Snoop operators (§2.1 BNF), each parsed and detected by the live LED:")
	examples := []string{
		"e1 | e2",
		"e1 ^ e2",
		"e1 ; e2",
		"NOT(e1, e2, e3)",
		"A(e1, e2, e3)",
		"A*(e1, e2, e3)",
		"P(e1, [5 sec], e3)",
		"P*(e1, [5 sec]:param, e3)",
		"e1 PLUS [30 sec]",
		"deposit:account1",
		"login::site_app",
	}
	for _, ex := range examples {
		fmt.Fprintf(w, "  %-28s", ex)
		if _, err := snoop.Parse(ex); err != nil {
			fmt.Fprintf(w, "PARSE ERROR: %v\n", err)
			continue
		}
		fmt.Fprintln(w, "ok")
	}
	return nil
}

func figureGraph(w io.Writer) error {
	r, err := newRig()
	if err != nil {
		return err
	}
	defer r.close()
	for _, sql := range []string{
		"create trigger t_addStk on stock for insert event addStk as print 'a'",
		"create trigger t_delStk on stock for delete event delStk as print 'd'",
		"create trigger t_and event addDel = delStk ^ addStk RECENT as select symbol, price from stock.inserted",
	} {
		if _, err := r.cs.Exec(sql); err != nil {
			return err
		}
	}
	fmt.Fprintln(w, "LED event graph after installing Examples 1 and 2 (pipe into `dot -Tsvg`):")
	fmt.Fprintln(w, r.agent.LED().Dot())
	return nil
}

func figureLimits(w io.Writer) error {
	limits := []struct{ limitation, status string }{
		{"Definition of complex data types is not allowed", "retained in the engine (faithful); the agent adds no types"},
		{"No direct access to C / other programs / the OS", "lifted: agent actions are Go callbacks at GED level; SQL actions in server"},
		{"Only atomic values may be passed to stored procedures", "retained (faithful); contexts pass tuples via sysContext join instead"},
		{"A trigger cannot be applied to more than one table", "lifted: composite events span tables (Example 2)"},
		{"New trigger on same (table, op) silently overwrites", "retained natively (tested); lifted for ECA triggers: many per event"},
		{"An event cannot be named and reused", "lifted: named events, Figure 10 reuse"},
		{"Composite events cannot be specified", "lifted: full Snoop algebra"},
	}
	for i, l := range limits {
		fmt.Fprintf(w, "%d. %s\n   -> %s\n", i+1, l.limitation, l.status)
	}
	return nil
}
