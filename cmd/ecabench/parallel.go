package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/activedb/ecaagent/internal/led"
	"github.com/activedb/ecaagent/internal/snoop"
)

// benchJSONPath, when set via -bench-json, receives the parallel
// experiment's results as a JSON document (BENCH_PR3.json in CI).
var benchJSONPath string

// parallelResult is one measured configuration of the sharding ablation.
type parallelResult struct {
	Mode       string  `json:"mode"` // "single-lock" | "sharded"
	Sets       int     `json:"sets"` // independent rule sets = signalling goroutines
	Shards     int     `json:"shards"`
	Signals    int     `json:"signals"`
	ElapsedNS  int64   `json:"elapsed_ns"`
	PerSec     float64 `json:"throughput_per_sec"`
	Detections uint64  `json:"detections"`
}

// parallelReport is the BENCH_PR3.json document.
type parallelReport struct {
	Bench         string           `json:"bench"`
	GoMaxProcs    int              `json:"go_max_procs"`
	NumCPU        int              `json:"num_cpu"`
	SignalsPerSet int              `json:"signals_per_set"`
	Results       []parallelResult `json:"results"`
	// Speedups maps "sets=N" to sharded/single-lock throughput ratio.
	Speedups map[string]float64 `json:"speedups"`
	Note     string             `json:"note"`
}

// expParallel is the tentpole ablation: concurrent Signal throughput over
// K independent rule sets (K goroutines, each hammering its own `a ^ b`
// CHRONICLE composite) through a single-lock LED (MaxShards: 1, the
// pre-sharding design) versus the sharded LED, where each independent
// component detects under its own lock. On a multi-core host the sharded
// detector scales with K up to the core count; the single lock serializes
// everything.
func expParallel(w io.Writer) error {
	const perSet = 30000
	report := parallelReport{
		Bench:         "sharded LED concurrent detection throughput",
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		SignalsPerSet: perSet,
		Speedups:      map[string]float64{},
		Note: "speedup = sharded / single-lock throughput at equal sets; " +
			"parallel gains require go_max_procs > 1 (detection is serialized on one core)",
	}
	fmt.Fprintf(w, "%-12s %6s %7s %12s %14s\n", "mode", "sets", "shards", "signals/s", "elapsed")
	base := map[int]float64{}
	for _, sets := range []int{1, 2, 4, 8} {
		for _, mode := range []struct {
			name string
			opts led.Options
		}{
			{"single-lock", led.Options{MaxShards: 1}},
			{"sharded", led.Options{}},
		} {
			r, err := runParallelOnce(mode.name, mode.opts, sets, perSet)
			if err != nil {
				return err
			}
			report.Results = append(report.Results, r)
			fmt.Fprintf(w, "%-12s %6d %7d %12.0f %14s\n",
				r.Mode, r.Sets, r.Shards, r.PerSec, time.Duration(r.ElapsedNS))
			if mode.name == "single-lock" {
				base[sets] = r.PerSec
			} else if b := base[sets]; b > 0 {
				report.Speedups[fmt.Sprintf("sets=%d", sets)] = r.PerSec / b
			}
		}
	}
	for _, sets := range []int{1, 2, 4, 8} {
		if s, ok := report.Speedups[fmt.Sprintf("sets=%d", sets)]; ok {
			fmt.Fprintf(w, "speedup sets=%d: %.2fx\n", sets, s)
		}
	}
	if benchJSONPath != "" {
		doc, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(benchJSONPath, append(doc, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", benchJSONPath)
	}
	return nil
}

// runParallelOnce measures one (mode, sets) cell: sets goroutines each
// signal perSet a/b pairs into their own composite, wall-clocked together.
func runParallelOnce(mode string, opts led.Options, sets, perSet int) (parallelResult, error) {
	l := led.NewWithOptions(led.NewManualClock(time.Unix(0, 0)), opts)
	var detected atomic.Uint64
	for k := 0; k < sets; k++ {
		a, b := fmt.Sprintf("s%d_a", k), fmt.Sprintf("s%d_b", k)
		for _, p := range []string{a, b} {
			if err := l.DefinePrimitive(p); err != nil {
				return parallelResult{}, err
			}
		}
		e, err := snoop.Parse(a + " ^ " + b)
		if err != nil {
			return parallelResult{}, err
		}
		comp := fmt.Sprintf("s%d_c", k)
		if err := l.DefineComposite(comp, e); err != nil {
			return parallelResult{}, err
		}
		if err := l.AddRule(&led.Rule{
			Name: "r" + comp, Event: comp, Context: led.Chronicle,
			Action: func(*led.Occ) { detected.Add(1) },
		}); err != nil {
			return parallelResult{}, err
		}
	}
	var wg sync.WaitGroup
	start := time.Now()
	for k := 0; k < sets; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			a, b := fmt.Sprintf("s%d_a", k), fmt.Sprintf("s%d_b", k)
			at := time.Unix(0, 0)
			for i := 1; i <= perSet; i++ {
				at = at.Add(time.Microsecond)
				l.Signal(led.Primitive{Event: a, Op: "insert", VNo: i, At: at})
				at = at.Add(time.Microsecond)
				l.Signal(led.Primitive{Event: b, Op: "insert", VNo: i, At: at})
			}
		}(k)
	}
	wg.Wait()
	l.Wait()
	elapsed := time.Since(start)
	total := sets * perSet * 2
	if got, want := detected.Load(), uint64(sets*perSet); got != want {
		return parallelResult{}, fmt.Errorf("parallel %s sets=%d: detected %d, want %d", mode, sets, got, want)
	}
	return parallelResult{
		Mode:       mode,
		Sets:       sets,
		Shards:     l.ShardCount(),
		Signals:    total,
		ElapsedNS:  elapsed.Nanoseconds(),
		PerSec:     float64(total) / elapsed.Seconds(),
		Detections: detected.Load(),
	}, nil
}
