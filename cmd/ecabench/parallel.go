package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/activedb/ecaagent/internal/led"
	"github.com/activedb/ecaagent/internal/snoop"
)

// benchJSONPath, when set via -bench-json, receives the parallel
// experiment's results as a JSON document (BENCH_PR3.json in CI).
var benchJSONPath string

// parallelResult is one measured configuration of the sharding ablation.
type parallelResult struct {
	Mode       string  `json:"mode"` // "single-lock" | "sharded"
	Sets       int     `json:"sets"` // independent rule sets = signalling goroutines
	Shards     int     `json:"shards"`
	Signals    int     `json:"signals"`
	ElapsedNS  int64   `json:"elapsed_ns"`
	PerSec     float64 `json:"throughput_per_sec"`
	Detections uint64  `json:"detections"`
	// AllocsPerOp / BytesPerOp are heap cost per signal, measured over the
	// whole run (runtime.MemStats deltas divided by signal count).
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// parallelReps is the repetitions per cell; each cell reports its best
// run. Single runs on a busy host swing ±30% (scheduler and GC phase
// noise — the sets=8 "slowdown" recorded in BENCH_PR3.json was exactly
// such an artifact); best-of-R suppresses the one-sided noise.
const parallelReps = 3

// parallelReport is the BENCH_PR3.json document.
type parallelReport struct {
	Bench         string           `json:"bench"`
	GoMaxProcs    int              `json:"go_max_procs"`
	NumCPU        int              `json:"num_cpu"`
	SignalsPerSet int              `json:"signals_per_set"`
	Results       []parallelResult `json:"results"`
	// Speedups maps "sets=N" to sharded/single-lock throughput ratio.
	Speedups map[string]float64 `json:"speedups"`
	Note     string             `json:"note"`
}

// expParallel is the tentpole ablation: concurrent Signal throughput over
// K independent rule sets (K goroutines, each hammering its own `a ^ b`
// CHRONICLE composite) through a single-lock LED (MaxShards: 1, the
// pre-sharding design) versus the sharded LED, where each independent
// component detects under its own lock. On a multi-core host the sharded
// detector scales with K up to the core count; the single lock serializes
// everything.
func expParallel(w io.Writer) error {
	const perSet = 30000
	report := parallelReport{
		Bench:         "sharded LED concurrent detection throughput",
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		SignalsPerSet: perSet,
		Speedups:      map[string]float64{},
		Note: "speedup = sharded / single-lock throughput at equal sets; " +
			"parallel gains require go_max_procs > 1 (detection is serialized on one core)",
	}
	results, speedups, err := runParallelSweep(w, perSet, parallelReps)
	if err != nil {
		return err
	}
	report.Results = results
	report.Speedups = speedups
	for _, sets := range []int{1, 2, 4, 8} {
		if s, ok := report.Speedups[fmt.Sprintf("sets=%d", sets)]; ok {
			fmt.Fprintf(w, "speedup sets=%d: %.2fx\n", sets, s)
		}
	}
	if benchJSONPath != "" {
		doc, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(benchJSONPath, append(doc, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", benchJSONPath)
	}
	return nil
}

// runParallelSweep measures the full sets × {single-lock, sharded} grid at
// the current GOMAXPROCS, printing a row per cell and returning the
// results plus the sharded/single-lock speedup per sets value.
func runParallelSweep(w io.Writer, perSet, reps int) ([]parallelResult, map[string]float64, error) {
	fmt.Fprintf(w, "%-12s %6s %7s %12s %14s %10s %10s\n",
		"mode", "sets", "shards", "signals/s", "elapsed", "allocs/op", "bytes/op")
	var results []parallelResult
	speedups := map[string]float64{}
	base := map[int]float64{}
	for _, sets := range []int{1, 2, 4, 8} {
		for _, mode := range []struct {
			name string
			opts led.Options
		}{
			{"single-lock", led.Options{MaxShards: 1}},
			{"sharded", led.Options{}},
		} {
			r, err := runParallelBest(mode.name, mode.opts, sets, perSet, reps)
			if err != nil {
				return nil, nil, err
			}
			results = append(results, r)
			fmt.Fprintf(w, "%-12s %6d %7d %12.0f %14s %10.2f %10.1f\n",
				r.Mode, r.Sets, r.Shards, r.PerSec, time.Duration(r.ElapsedNS),
				r.AllocsPerOp, r.BytesPerOp)
			if mode.name == "single-lock" {
				base[sets] = r.PerSec
			} else if b := base[sets]; b > 0 {
				speedups[fmt.Sprintf("sets=%d", sets)] = r.PerSec / b
			}
		}
	}
	return results, speedups, nil
}

// runParallelBest runs one cell reps times and keeps the highest
// throughput (allocs/op is taken from the same run; it is stable across
// repetitions anyway).
func runParallelBest(mode string, opts led.Options, sets, perSet, reps int) (parallelResult, error) {
	var best parallelResult
	for i := 0; i < reps; i++ {
		r, err := runParallelOnce(mode, opts, sets, perSet)
		if err != nil {
			return parallelResult{}, err
		}
		if r.PerSec > best.PerSec {
			best = r
		}
	}
	return best, nil
}

// runParallelOnce measures one (mode, sets) cell: sets goroutines each
// signal perSet a/b pairs into their own composite, wall-clocked together.
func runParallelOnce(mode string, opts led.Options, sets, perSet int) (parallelResult, error) {
	l := led.NewWithOptions(led.NewManualClock(time.Unix(0, 0)), opts)
	var detected atomic.Uint64
	for k := 0; k < sets; k++ {
		a, b := fmt.Sprintf("s%d_a", k), fmt.Sprintf("s%d_b", k)
		for _, p := range []string{a, b} {
			if err := l.DefinePrimitive(p); err != nil {
				return parallelResult{}, err
			}
		}
		e, err := snoop.Parse(a + " ^ " + b)
		if err != nil {
			return parallelResult{}, err
		}
		comp := fmt.Sprintf("s%d_c", k)
		if err := l.DefineComposite(comp, e); err != nil {
			return parallelResult{}, err
		}
		if err := l.AddRule(&led.Rule{
			Name: "r" + comp, Event: comp, Context: led.Chronicle,
			Action: func(*led.Occ) { detected.Add(1) },
		}); err != nil {
			return parallelResult{}, err
		}
	}
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	var wg sync.WaitGroup
	start := time.Now()
	for k := 0; k < sets; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			a, b := fmt.Sprintf("s%d_a", k), fmt.Sprintf("s%d_b", k)
			at := time.Unix(0, 0)
			for i := 1; i <= perSet; i++ {
				at = at.Add(time.Microsecond)
				l.Signal(led.Primitive{Event: a, Op: "insert", VNo: i, At: at})
				at = at.Add(time.Microsecond)
				l.Signal(led.Primitive{Event: b, Op: "insert", VNo: i, At: at})
			}
		}(k)
	}
	wg.Wait()
	l.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	total := sets * perSet * 2
	if got, want := detected.Load(), uint64(sets*perSet); got != want {
		return parallelResult{}, fmt.Errorf("parallel %s sets=%d: detected %d, want %d", mode, sets, got, want)
	}
	return parallelResult{
		Mode:        mode,
		Sets:        sets,
		Shards:      l.ShardCount(),
		Signals:     total,
		ElapsedNS:   elapsed.Nanoseconds(),
		PerSec:      float64(total) / elapsed.Seconds(),
		Detections:  detected.Load(),
		AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / float64(total),
		BytesPerOp:  float64(m1.TotalAlloc-m0.TotalAlloc) / float64(total),
	}, nil
}
