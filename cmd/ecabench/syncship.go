package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"

	"github.com/activedb/ecaagent/internal/cluster"
	"github.com/activedb/ecaagent/internal/storage"
)

// The sync-ship overhead ablation (ISSUE 9): the same WAL-record stream
// shipped to a real TCP standby twice — fire-and-forget (async, the PR 6
// default) and with a per-record durable-ack barrier (-repl-mode sync).
// Async's cost is the write; sync's cost is the write plus a network
// round-trip plus the standby's fsync, paid on every occurrence before it
// is acknowledged. The report records both throughputs, the sync
// per-record ack latency distribution, and the ratio — the price of
// RPO=0 in concrete units, committed as BENCH_PR9.json.

type syncShipLeg struct {
	Frames       int     `json:"frames"`
	ElapsedNs    int64   `json:"elapsed_ns"`
	FramesPerSec float64 `json:"frames_per_sec"`
	// DrainNs is how long after the last Ship the standby's cumulative
	// ack caught up (async pays it once at the end; sync by construction
	// drains every record, so it is 0 there).
	DrainNs int64 `json:"drain_ns"`
	// Ack latency distribution per record (sync leg only).
	AckP50Ns int64 `json:"ack_p50_ns,omitempty"`
	AckP95Ns int64 `json:"ack_p95_ns,omitempty"`
	AckP99Ns int64 `json:"ack_p99_ns,omitempty"`
}

type syncShipReport struct {
	Bench         string      `json:"bench"`
	GoVersion     string      `json:"go_version"`
	NumCPU        int         `json:"num_cpu"`
	Frames        int         `json:"frames"`
	PayloadBytes  int         `json:"payload_bytes"`
	SyncWindow    int         `json:"sync_window"`
	Async         syncShipLeg `json:"async"`
	Sync          syncShipLeg `json:"sync"`
	OverheadRatio float64     `json:"overhead_ratio"` // async fps / sync fps
	Note          string      `json:"note"`
}

// syncShipStandby stands up a real replication standby on loopback over a
// throwaway OS directory, returning its address and a cleanup.
func syncShipStandby() (addr string, cleanup func(), err error) {
	dir, err := os.MkdirTemp("", "ecabench-syncship-*")
	if err != nil {
		return "", nil, err
	}
	ap := cluster.NewApplier(storage.OSDir{Dir: dir}, nil)
	addr, stop, err := cluster.ListenStandby("127.0.0.1:0", ap)
	if err != nil {
		os.RemoveAll(dir)
		return "", nil, err
	}
	return addr, func() {
		stop()
		ap.Close()
		os.RemoveAll(dir)
	}, nil
}

// syncShipFrames renders the workload: one FrameFileOpen then n
// FrameFileData appends of payload bytes each — the shape of a WAL
// occurrence stream.
func syncShipFrames(n, payload int) []cluster.Frame {
	body := make([]byte, payload)
	for i := range body {
		body[i] = byte('a' + i%26)
	}
	frames := make([]cluster.Frame, 0, n+1)
	frames = append(frames, cluster.Frame{Kind: cluster.FrameFileOpen, Name: "wal-1"})
	for i := 0; i < n; i++ {
		frames = append(frames, cluster.Frame{Kind: cluster.FrameFileData, Name: "wal-1", Payload: body})
	}
	return frames
}

func expSyncShip(w io.Writer) error {
	const (
		frames  = 4000
		payload = 64 // a typical encoded occurrence record
		window  = 4
	)
	report := syncShipReport{
		Bench:        "sync-ship overhead: per-record durable-ack barrier vs fire-and-forget",
		GoVersion:    runtime.Version(),
		NumCPU:       runtime.NumCPU(),
		Frames:       frames,
		PayloadBytes: payload,
		SyncWindow:   window,
		Note: "loopback TCP, real standby applier over an OS dir; sync pays a round-trip + " +
			"standby apply per record before the occurrence is acknowledged (RPO=0)",
	}

	// Async leg: fire-and-forget, then wait for the cumulative ack to
	// drain so both legs account for the same durable work.
	{
		addr, cleanup, err := syncShipStandby()
		if err != nil {
			return err
		}
		s := cluster.NewShipper(cluster.ShipperConfig{Addr: addr, Node: "bench"}, nil)
		start := time.Now()
		for _, f := range syncShipFrames(frames, payload) {
			if err := s.Ship(f); err != nil {
				cleanup()
				return fmt.Errorf("async ship: %w", err)
			}
		}
		shipped := time.Since(start)
		for {
			if recs, _ := s.Lag(); recs == 0 {
				break
			}
			time.Sleep(200 * time.Microsecond)
		}
		drained := time.Since(start)
		s.Close()
		cleanup()
		report.Async = syncShipLeg{
			Frames:       frames,
			ElapsedNs:    shipped.Nanoseconds(),
			FramesPerSec: float64(frames) / shipped.Seconds(),
			DrainNs:      (drained - shipped).Nanoseconds(),
		}
		fmt.Fprintf(w, "async: %d frames in %v (%.0f frames/s), final drain %v\n",
			frames, shipped.Round(time.Microsecond), report.Async.FramesPerSec,
			(drained - shipped).Round(time.Microsecond))
	}

	// Sync leg: every record waits for the standby's durable ack, exactly
	// as the agent's durableSignal does in -repl-mode sync.
	{
		addr, cleanup, err := syncShipStandby()
		if err != nil {
			return err
		}
		s := cluster.NewShipper(cluster.ShipperConfig{
			Addr: addr, Node: "bench", SyncWindow: window, AckTimeout: 10 * time.Second,
		}, nil)
		lats := make([]time.Duration, 0, frames+1)
		start := time.Now()
		for _, f := range syncShipFrames(frames, payload) {
			rec := time.Now()
			if err := s.Ship(f); err != nil {
				cleanup()
				return fmt.Errorf("sync ship: %w", err)
			}
			if err := s.Barrier(); err != nil {
				cleanup()
				return fmt.Errorf("sync barrier: %w", err)
			}
			lats = append(lats, time.Since(rec))
		}
		elapsed := time.Since(start)
		s.Close()
		cleanup()
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		pct := func(p float64) int64 {
			idx := int(p * float64(len(lats)-1))
			return lats[idx].Nanoseconds()
		}
		report.Sync = syncShipLeg{
			Frames:       frames,
			ElapsedNs:    elapsed.Nanoseconds(),
			FramesPerSec: float64(frames) / elapsed.Seconds(),
			AckP50Ns:     pct(0.50),
			AckP95Ns:     pct(0.95),
			AckP99Ns:     pct(0.99),
		}
		fmt.Fprintf(w, "sync:  %d frames in %v (%.0f frames/s), ack p50=%v p95=%v p99=%v\n",
			frames, elapsed.Round(time.Microsecond), report.Sync.FramesPerSec,
			time.Duration(report.Sync.AckP50Ns).Round(time.Microsecond),
			time.Duration(report.Sync.AckP95Ns).Round(time.Microsecond),
			time.Duration(report.Sync.AckP99Ns).Round(time.Microsecond))
	}

	report.OverheadRatio = report.Async.FramesPerSec / report.Sync.FramesPerSec
	fmt.Fprintf(w, "overhead: async ships %.1fx faster; sync buys RPO=0 per record\n", report.OverheadRatio)

	if benchJSONPath != "" {
		doc, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(benchJSONPath, append(doc, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", benchJSONPath)
	}
	return nil
}
