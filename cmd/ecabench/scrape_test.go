package main

import (
	"math"
	"strings"
	"testing"
)

const exposition = `# HELP eca_actions_run_total Completed rule actions.
# TYPE eca_actions_run_total counter
eca_actions_run_total 40
# HELP eca_rule_runs_total Completed runs per rule.
# TYPE eca_rule_runs_total counter
eca_rule_runs_total{rule="db.u.r_one"} 25
eca_rule_runs_total{rule="weird \"quoted\", name"} 15
# HELP eca_action_latency_seconds Queue-to-completion action latency.
# TYPE eca_action_latency_seconds histogram
eca_action_latency_seconds_bucket{le="0.001"} 10
eca_action_latency_seconds_bucket{le="0.01"} 90
eca_action_latency_seconds_bucket{le="0.1"} 100
eca_action_latency_seconds_bucket{le="+Inf"} 100
eca_action_latency_seconds_sum 0.42
eca_action_latency_seconds_count 100
`

func TestParsePrometheus(t *testing.T) {
	samples, err := parsePrometheus(exposition)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for _, s := range samples {
		if len(s.labels) == 0 {
			byName[s.name] = s.value
		}
	}
	if byName["eca_actions_run_total"] != 40 {
		t.Errorf("counter: %v", byName["eca_actions_run_total"])
	}
	var ruleVals []float64
	for _, s := range samples {
		if s.name == "eca_rule_runs_total" {
			ruleVals = append(ruleVals, s.value)
			if s.value == 15 && s.labels["rule"] != `weird "quoted", name` {
				t.Errorf("escaped label parsed as %q", s.labels["rule"])
			}
		}
	}
	if len(ruleVals) != 2 {
		t.Errorf("rule series: %v", ruleVals)
	}
}

func TestParsePrometheusRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"novalue",
		`m{le="0.1" 3`,
		`m{le=nope} 3`,
		"m notanumber",
		`m{a="x"} notanumber`,
	} {
		if _, err := parsePrometheus(bad); err == nil {
			t.Errorf("parsed %q", bad)
		}
	}
}

// TestParsePrometheusUnknownLabeledFamilies: families the scraper has
// never heard of — including label values containing spaces, commas and a
// closing brace — must parse instead of poisoning the whole exposition
// (the eca_cluster_* additions are exactly such families).
func TestParsePrometheusUnknownLabeledFamilies(t *testing.T) {
	text := strings.Join([]string{
		`eca_cluster_role{node="n1",role="standby (warm, promoted}"} 1`,
		`eca_cluster_repl_lag_bytes{peer="n2"} 4096`,
		`eca_actions_run_total 40`,
	}, "\n")
	samples, err := parsePrometheus(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 3 {
		t.Fatalf("parsed %d samples, want 3", len(samples))
	}
	role := samples[0]
	if role.name != "eca_cluster_role" || role.value != 1 {
		t.Errorf("role sample = %+v", role)
	}
	if role.labels["node"] != "n1" || role.labels["role"] != "standby (warm, promoted}" {
		t.Errorf("role labels = %v", role.labels)
	}
	if samples[1].labels["peer"] != "n2" || samples[1].value != 4096 {
		t.Errorf("lag sample = %+v", samples[1])
	}
}

func TestHistogramQuantile(t *testing.T) {
	samples, err := parsePrometheus(exposition)
	if err != nil {
		t.Fatal(err)
	}
	h, ok := histogramFrom(samples, "eca_action_latency_seconds")
	if !ok {
		t.Fatal("histogram not found")
	}
	if h.count != 100 || h.sum != 0.42 {
		t.Fatalf("count=%d sum=%v", h.count, h.sum)
	}
	// p50: target 50 falls in the (0.001, 0.01] bucket holding ranks 11-90:
	// 0.001 + (50-10)/80 * 0.009 = 0.0055.
	if p50 := h.quantile(0.50); math.Abs(p50-0.0055) > 1e-9 {
		t.Errorf("p50 = %v", p50)
	}
	// p99: target 99 falls in the (0.01, 0.1] bucket holding ranks 91-100.
	if p99 := h.quantile(0.99); math.Abs(p99-0.091) > 1e-9 {
		t.Errorf("p99 = %v", p99)
	}
	if _, ok := histogramFrom(samples, "eca_actions_run_total"); ok {
		t.Error("plain counter treated as histogram")
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	text := strings.Join([]string{
		`h_bucket{le="0.5"} 0`,
		`h_bucket{le="+Inf"} 5`,
		`h_sum 10`,
		`h_count 5`,
	}, "\n")
	samples, err := parsePrometheus(text)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := histogramFrom(samples, "h")
	// Everything in the +Inf bucket: clamp to the largest finite bound.
	if q := h.quantile(0.5); q != 0.5 {
		t.Errorf("inf-bucket quantile = %v", q)
	}
	empty := &histogram{bounds: []float64{1}, cum: []uint64{0}}
	if q := empty.quantile(0.5); !math.IsNaN(q) {
		t.Errorf("empty quantile = %v", q)
	}
}
