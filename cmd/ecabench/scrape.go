package main

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// The -metrics mode scrapes the agent's /metrics endpoint between
// experiment runs and summarizes its latency histograms, so the numbers
// EXPERIMENTS.md records can be cross-checked against the observability
// layer instead of only the benchmark's own stopwatches.

// sample is one parsed exposition line: name{labels} value.
type sample struct {
	name   string
	labels map[string]string
	value  float64
}

// parsePrometheus parses text-format exposition (the subset the obs
// package emits: no timestamps, no exemplars). Labeled families it has
// never heard of must parse too — label *values* may contain spaces,
// commas and braces, so the value is whatever follows the label block's
// closing brace, never "the text after the last space" (which a label
// like role="standby (warm)" would break).
func parsePrometheus(text string) ([]sample, error) {
	var out []sample
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s := sample{labels: map[string]string{}}
		var valStr string
		if open := strings.IndexByte(line, '{'); open >= 0 {
			s.name = line[:open]
			closing := closeBrace(line, open+1)
			if closing < 0 {
				return nil, fmt.Errorf("unclosed labels in %q", line)
			}
			for _, pair := range splitLabels(line[open+1 : closing]) {
				eq := strings.IndexByte(pair, '=')
				if eq < 0 {
					return nil, fmt.Errorf("bad label in %q", line)
				}
				val, err := strconv.Unquote(pair[eq+1:])
				if err != nil {
					return nil, fmt.Errorf("bad label value in %q: %v", line, err)
				}
				s.labels[pair[:eq]] = val
			}
			valStr = strings.TrimSpace(line[closing+1:])
		} else {
			sp := strings.LastIndexByte(line, ' ')
			if sp < 0 {
				return nil, fmt.Errorf("malformed line %q", line)
			}
			s.name, valStr = line[:sp], strings.TrimSpace(line[sp+1:])
		}
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value in %q: %v", line, err)
		}
		s.value = v
		out = append(out, s)
	}
	return out, nil
}

// closeBrace finds the index of the '}' closing a label block that opened
// just before start, skipping quoted sections and escapes. Returns -1 when
// the block never closes.
func closeBrace(s string, start int) int {
	quoted := false
	for i := start; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			quoted = !quoted
		case '}':
			if !quoted {
				return i
			}
		}
	}
	return -1
}

// splitLabels splits `a="x",b="y"` on commas outside quotes.
func splitLabels(s string) []string {
	var parts []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		parts = append(parts, s[start:])
	}
	return parts
}

// histogram is a scraped cumulative-bucket histogram.
type histogram struct {
	bounds []float64 // ascending, +Inf last
	cum    []uint64
	count  uint64
	sum    float64
}

// histogramFrom assembles name's _bucket/_sum/_count samples.
func histogramFrom(samples []sample, name string) (*histogram, bool) {
	h := &histogram{}
	type bk struct {
		le  float64
		cum uint64
	}
	var bks []bk
	for _, s := range samples {
		switch s.name {
		case name + "_bucket":
			le := s.labels["le"]
			bound := math.Inf(1)
			if le != "+Inf" {
				b, err := strconv.ParseFloat(le, 64)
				if err != nil {
					return nil, false
				}
				bound = b
			}
			bks = append(bks, bk{le: bound, cum: uint64(s.value)})
		case name + "_sum":
			h.sum = s.value
		case name + "_count":
			h.count = uint64(s.value)
		}
	}
	if len(bks) == 0 {
		return nil, false
	}
	sort.Slice(bks, func(i, j int) bool { return bks[i].le < bks[j].le })
	for _, b := range bks {
		h.bounds = append(h.bounds, b.le)
		h.cum = append(h.cum, b.cum)
	}
	return h, true
}

// quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// within the containing bucket, the standard histogram_quantile estimate.
// The +Inf bucket clamps to the largest finite bound.
func (h *histogram) quantile(q float64) float64 {
	if h.count == 0 {
		return math.NaN()
	}
	target := q * float64(h.count)
	var prevCum uint64
	prevBound := 0.0
	for i, cum := range h.cum {
		if float64(cum) >= target {
			if math.IsInf(h.bounds[i], 1) {
				return prevBound
			}
			if cum == prevCum {
				return h.bounds[i]
			}
			frac := (target - float64(prevCum)) / float64(cum-prevCum)
			return prevBound + frac*(h.bounds[i]-prevBound)
		}
		prevCum, prevBound = cum, h.bounds[i]
	}
	return prevBound
}

// scrape fetches and parses one exposition from url.
func scrape(url string) ([]sample, error) {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("scrape %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return parsePrometheus(string(body))
}

// latencyHistograms are the event-path stages summarized after each run.
var latencyHistograms = []string{
	"eca_gateway_batch_seconds",
	"eca_detect_latency_seconds",
	"eca_action_latency_seconds",
}

// printScrapeSummary scrapes url and prints count/p50/p95/p99 for each
// latency histogram plus the notification counters.
func printScrapeSummary(w io.Writer, url string) error {
	samples, err := scrape(url)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\n--- /metrics scrape (%s) ---\n", url)
	fmt.Fprintf(w, "%-28s %10s %12s %12s %12s\n", "stage", "count", "p50", "p95", "p99")
	for _, name := range latencyHistograms {
		h, ok := histogramFrom(samples, name)
		if !ok || h.count == 0 {
			continue
		}
		fmt.Fprintf(w, "%-28s %10d %12s %12s %12s\n", name, h.count,
			fmtSeconds(h.quantile(0.50)), fmtSeconds(h.quantile(0.95)), fmtSeconds(h.quantile(0.99)))
	}
	for _, s := range samples {
		if strings.HasPrefix(s.name, "eca_notifications_") {
			fmt.Fprintf(w, "%-28s %10.0f\n", s.name, s.value)
		}
	}
	return nil
}

func fmtSeconds(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return time.Duration(v * float64(time.Second)).Round(time.Microsecond).String()
}
