package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestEveryFigureRegenerates runs each figure function and checks for
// non-empty output, so figure regeneration cannot silently rot.
func TestEveryFigureRegenerates(t *testing.T) {
	for _, id := range figureIDs() {
		id := id
		t.Run("figure"+id, func(t *testing.T) {
			var buf bytes.Buffer
			if err := figures[id].fn(&buf); err != nil {
				t.Fatalf("figure %s: %v", id, err)
			}
			if strings.TrimSpace(buf.String()) == "" {
				t.Fatalf("figure %s produced no output", id)
			}
		})
	}
}

// TestFigureContentSpotChecks asserts paper-visible content of key
// figures.
func TestFigureContentSpotChecks(t *testing.T) {
	check := func(id string, wants ...string) {
		t.Helper()
		var buf bytes.Buffer
		if err := figures[id].fn(&buf); err != nil {
			t.Fatalf("figure %s: %v", id, err)
		}
		out := buf.String()
		for _, want := range wants {
			if !strings.Contains(out, want) {
				t.Errorf("figure %s missing %q", id, want)
			}
		}
	}
	check("1", "MATCH")
	check("3", "ECA command = true", "SysPrimitiveEvent")
	check("4", "Step 6")
	check("5", "vNo", "timeStamp")
	check("7", "triggerProc")
	check("11", "select * into sentineldb.sharma.stock_inserted", "syb_sendmsg")
	check("14", "create procedure sentineldb.sharma.t_and__Proc", "sysContext")
	check("17", "tableName", "context", "vNo")
	check("snoop", "P*(e1, [5 sec]:param, e3)")
	check("limits", "Composite events cannot be specified")
}

func TestFigureIDsOrdered(t *testing.T) {
	ids := figureIDs()
	if len(ids) != len(figures) {
		t.Fatalf("ids %d vs figures %d", len(ids), len(figures))
	}
	if ids[0] != "1" || ids[16] != "17" {
		t.Errorf("numeric ordering: %v", ids)
	}
}

// TestExperimentIDs ensures the experiment registry stays consistent.
func TestExperimentIDs(t *testing.T) {
	ids := experimentIDs()
	if len(ids) != len(experiments) {
		t.Fatalf("ids %d vs experiments %d", len(ids), len(experiments))
	}
	for _, id := range ids {
		if experiments[id].fn == nil {
			t.Errorf("experiment %s has no function", id)
		}
	}
}
