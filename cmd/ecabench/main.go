// Command ecabench regenerates every figure of the paper from the live
// system and runs the quantitative experiments recorded in EXPERIMENTS.md.
//
// Usage:
//
//	ecabench -figure 11        # regenerate one figure (1-17, snoop, limits)
//	ecabench -all              # regenerate every figure
//	ecabench -exp passthrough  # run one experiment
//	ecabench -exp all          # run every experiment
//	ecabench -exp e2e -metrics # also scrape the agent's /metrics after the run
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
)

func main() {
	figure := flag.String("figure", "", "figure to regenerate (1-17, snoop, limits)")
	all := flag.Bool("all", false, "regenerate every figure")
	exp := flag.String("exp", "", "experiment to run: "+strings.Join(experimentIDs(), ", ")+", or all")
	flag.StringVar(&benchJSONPath, "bench-json", "",
		"write the parallel/matrix experiment's results as JSON to this path")
	flag.StringVar(&gateBaselinePath, "gate-baseline", "BENCH_PR7.json",
		"baseline JSON the gate experiment compares fresh measurements against")
	flag.Float64Var(&gateThreshold, "gate-threshold", 0.10,
		"fractional ns/op slowdown the gate experiment tolerates (allocs/op may never rise)")
	flag.BoolVar(&scrapeEnabled, "metrics", false,
		"serve the agent's admin endpoint during experiments and print a /metrics scrape after each run")
	flag.Parse()

	switch {
	case *all:
		for _, id := range figureIDs() {
			printFigure(id)
		}
	case *figure != "":
		printFigure(*figure)
	case *exp == "all":
		for _, id := range experimentIDs() {
			if experiments[id].manual {
				continue // needs a committed baseline or explicit opt-in
			}
			runExperiment(id)
		}
	case *exp != "":
		runExperiment(*exp)
	default:
		flag.Usage()
		fmt.Fprintf(os.Stderr, "\nfigures: %s\nexperiments: %s\n",
			strings.Join(figureIDs(), ", "), strings.Join(experimentIDs(), ", "))
		os.Exit(2)
	}
}

func printFigure(id string) {
	f, ok := figures[id]
	if !ok {
		log.Fatalf("ecabench: unknown figure %q (have %s)", id, strings.Join(figureIDs(), ", "))
	}
	fmt.Printf("=== Figure %s: %s ===\n", id, f.title)
	if err := f.fn(os.Stdout); err != nil {
		log.Fatalf("ecabench: figure %s: %v", id, err)
	}
	fmt.Println()
}

func runExperiment(id string) {
	e, ok := experiments[id]
	if !ok {
		log.Fatalf("ecabench: unknown experiment %q (have %s)", id, strings.Join(experimentIDs(), ", "))
	}
	fmt.Printf("=== Experiment %s: %s ===\n", id, e.title)
	if err := e.fn(os.Stdout); err != nil {
		log.Fatalf("ecabench: experiment %s: %v", id, err)
	}
	fmt.Println()
}
