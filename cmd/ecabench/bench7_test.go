package main

import (
	"strings"
	"testing"
)

func baselineGated() map[string]gatedMetric {
	return map[string]gatedMetric{
		"signal_warm":           {NsPerOp: 1000, AllocsPerOp: 1, BytesPerOp: 64},
		"decode_binary_batch16": {NsPerOp: 500, AllocsPerOp: 0, BytesPerOp: 0},
	}
}

// A synthetic 15% ns/op regression must fail a 10% gate — the acceptance
// scenario of ISSUE 7.
func TestGateFailsOnFifteenPercentRegression(t *testing.T) {
	fresh := baselineGated()
	fresh["signal_warm"] = gatedMetric{NsPerOp: 1150, AllocsPerOp: 1, BytesPerOp: 64}
	violations := compareGate(baselineGated(), fresh, 0.10, 1.0)
	if len(violations) != 1 || !strings.Contains(violations[0], "signal_warm") {
		t.Fatalf("want one signal_warm ns/op violation, got %v", violations)
	}
	// The same regression passes CI's looser 25% threshold.
	if v := compareGate(baselineGated(), fresh, 0.25, 1.0); len(v) != 0 {
		t.Fatalf("15%% slowdown should pass a 25%% gate, got %v", v)
	}
}

// Any allocs/op increase fails regardless of threshold.
func TestGateFailsOnAnyAllocIncrease(t *testing.T) {
	fresh := baselineGated()
	fresh["decode_binary_batch16"] = gatedMetric{NsPerOp: 400, AllocsPerOp: 1, BytesPerOp: 16}
	violations := compareGate(baselineGated(), fresh, 1.0, 1.0)
	if len(violations) != 1 || !strings.Contains(violations[0], "allocs/op") {
		t.Fatalf("want one allocs/op violation, got %v", violations)
	}
}

// Noise within the threshold, faster runs, and alloc decreases all pass.
func TestGatePassesWithinBudget(t *testing.T) {
	fresh := map[string]gatedMetric{
		"signal_warm":           {NsPerOp: 1090, AllocsPerOp: 1, BytesPerOp: 64},
		"decode_binary_batch16": {NsPerOp: 300, AllocsPerOp: 0, BytesPerOp: 0},
	}
	if v := compareGate(baselineGated(), fresh, 0.10, 1.0); len(v) != 0 {
		t.Fatalf("within-budget run failed the gate: %v", v)
	}
}

// Host-speed calibration cancels systematic drift: a uniformly 2x-slower
// fresh run passes when the probe also measured 2x slower (scale=2.0), but
// a real regression on top of the drift still fails.
func TestGateCalibrationCancelsHostDrift(t *testing.T) {
	fresh := map[string]gatedMetric{
		"signal_warm":           {NsPerOp: 2000, AllocsPerOp: 1, BytesPerOp: 64},
		"decode_binary_batch16": {NsPerOp: 1000, AllocsPerOp: 0, BytesPerOp: 0},
	}
	if v := compareGate(baselineGated(), fresh, 0.10, 2.0); len(v) != 0 {
		t.Fatalf("2x drift with scale=2.0 should pass, got %v", v)
	}
	// Same drift, but signal_warm is additionally 20% slower: that is a
	// genuine regression the scaled threshold must still catch.
	fresh["signal_warm"] = gatedMetric{NsPerOp: 2400, AllocsPerOp: 1, BytesPerOp: 64}
	v := compareGate(baselineGated(), fresh, 0.10, 2.0)
	if len(v) != 1 || !strings.Contains(v[0], "signal_warm") {
		t.Fatalf("want one signal_warm violation under drift, got %v", v)
	}
}

// A fast-phase probe (scale < 1) must not tighten the gate below the raw
// threshold: an unchanged fresh run passes even when the probe says the
// host is 2x faster.
func TestGateScaleClampedAtOne(t *testing.T) {
	if v := compareGate(baselineGated(), baselineGated(), 0.10, 0.5); len(v) != 0 {
		t.Fatalf("unchanged run failed under a fast probe: %v", v)
	}
	// The raw threshold still applies: a 15% regression fails at scale 0.5.
	fresh := baselineGated()
	fresh["signal_warm"] = gatedMetric{NsPerOp: 1150, AllocsPerOp: 1, BytesPerOp: 64}
	v := compareGate(baselineGated(), fresh, 0.10, 0.5)
	if len(v) != 1 || !strings.Contains(v[0], "signal_warm") {
		t.Fatalf("want one signal_warm violation at clamped scale, got %v", v)
	}
}

// The ns/op violation formatter must report the true direction of
// movement and the scaled limit that was breached (ISSUE 8: a decrease
// was reported as "ns/op rose 1955.4 -> 1849.6" by the old formatter).
func TestNsViolationFormatter(t *testing.T) {
	cases := []struct {
		name             string
		base, got, limit float64
		want             []string
	}{
		{"signal_warm", 1000, 1150, 1100,
			[]string{"signal_warm:", "rose 1000.0 -> 1150.0", "scaled limit 1100.0"}},
		{"signal_warm", 1955.4, 1849.6, 1800,
			[]string{"fell 1955.4 -> 1849.6", "scaled limit 1800.0"}},
		{"signal_warm", 1000, 1000, 990,
			[]string{"held 1000.0 -> 1000.0"}},
	}
	for _, c := range cases {
		v := nsViolation(c.name, c.base, c.got, c.limit, 0.10, 1.0)
		for _, w := range c.want {
			if !strings.Contains(v, w) {
				t.Errorf("violation %q missing %q", v, w)
			}
		}
		// remeasureViolating matches by this prefix; it must survive any
		// future rewording.
		if !strings.HasPrefix(v, c.name+":") {
			t.Errorf("violation %q lost the %q prefix", v, c.name+":")
		}
	}
}

// A metric missing from the fresh run is a violation, not a silent pass.
func TestGateFailsOnMissingMetric(t *testing.T) {
	fresh := baselineGated()
	delete(fresh, "signal_warm")
	violations := compareGate(baselineGated(), fresh, 0.10, 1.0)
	if len(violations) != 1 || !strings.Contains(violations[0], "missing") {
		t.Fatalf("want one missing-metric violation, got %v", violations)
	}
}

// Every name in the gated set must resolve to a benchmark body (a typo'd
// entry would otherwise only surface as a panic mid-matrix-run).
func TestGatedBenchNamesResolve(t *testing.T) {
	for _, name := range gatedBenchNames {
		if gatedBench(name) == nil {
			t.Errorf("gatedBench(%q) has no body", name)
		}
	}
	if gatedBench("no-such-benchmark") != nil {
		t.Error("unknown name resolved to a body")
	}
}
