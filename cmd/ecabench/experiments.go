package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"time"

	"github.com/activedb/ecaagent/internal/agent"
	"github.com/activedb/ecaagent/internal/catalog"
	"github.com/activedb/ecaagent/internal/client"
	"github.com/activedb/ecaagent/internal/engine"
	"github.com/activedb/ecaagent/internal/led"
	"github.com/activedb/ecaagent/internal/server"
	"github.com/activedb/ecaagent/internal/snoop"
)

// experiments maps ids to the quantitative measurements EXPERIMENTS.md
// records. The paper publishes no performance numbers; these characterize
// the costs its architecture implies (mediation, notification, detection,
// recovery).
var experiments = map[string]struct {
	title string
	fn    func(w io.Writer) error
	// manual experiments need external inputs (a committed baseline) or
	// re-run other experiments wholesale; `-exp all` skips them.
	manual bool
}{
	"passthrough": {title: "per-statement latency: direct server vs via ECA agent gateway", fn: expPassthrough},
	"e2e":         {title: "end-to-end rule latency: DML to action completion", fn: expEndToEnd},
	"notify":      {title: "notification transport: UDP datagram vs in-process delivery", fn: expNotify},
	"operators":   {title: "LED detection cost per Snoop operator", fn: expOperators},
	"contexts":    {title: "LED detection cost per parameter context", fn: expContexts},
	"recovery":    {title: "agent restart time vs persisted rule count", fn: expRecovery},
	"fanout":      {title: "k triggers on one event (native limit lifted)", fn: expFanout},
	"parallel":    {title: "sharded vs single-lock LED under concurrent independent rule sets", fn: expParallel},
	"matrix":      {title: "GOMAXPROCS-matrixed sharding ablation + gated hot-path micro-benchmarks (BENCH_PR7.json)", fn: expMatrix, manual: true},
	"gate":        {title: "perf-regression gate: fresh gated metrics vs committed BENCH_PR7.json", fn: expGate, manual: true},
	"syncship":    {title: "sync-ship overhead: per-record durable-ack barrier vs fire-and-forget (BENCH_PR9.json)", fn: expSyncShip, manual: true},
}

func experimentIDs() []string {
	ids := make([]string, 0, len(experiments))
	for id := range experiments {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

const expRounds = 2000

func median(durs []time.Duration) time.Duration {
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	return durs[len(durs)/2]
}

// scrapeEnabled is ecabench's -metrics flag: experiments that stand up a
// tcpDeployment also serve the agent's admin endpoint and print a /metrics
// scrape summary when the deployment closes.
var scrapeEnabled bool

// tcpDeployment stands up the full paper deployment: server, agent, and a
// client connected to each.
type tcpDeployment struct {
	srv    *server.Server
	agent  *agent.Agent
	direct *client.Conn
	viaAg  *client.Conn

	adminLn  net.Listener // nil unless -metrics
	adminURL string
}

func newTCPDeployment() (*tcpDeployment, error) {
	srv := server.New(engine.New(catalog.New()))
	srv.Logf = func(string, ...any) {}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		return nil, err
	}
	a, err := agent.New(agent.Config{Dial: agent.TCPDialer(srv.Addr()), Logf: func(string, ...any) {}})
	if err != nil {
		srv.Close()
		return nil, err
	}
	if err := a.ListenGateway("127.0.0.1:0"); err != nil {
		a.Close()
		srv.Close()
		return nil, err
	}
	direct, err := client.Connect(srv.Addr(), client.Options{User: "sharma"})
	if err != nil {
		a.Close()
		srv.Close()
		return nil, err
	}
	viaAg, err := client.Connect(a.GatewayAddr(), client.Options{User: "sharma"})
	if err != nil {
		direct.Close()
		a.Close()
		srv.Close()
		return nil, err
	}
	if err := direct.MustExec("create database sentineldb use sentineldb create table stock (symbol varchar(10), price float null)"); err != nil {
		return nil, err
	}
	if err := viaAg.MustExec("use sentineldb"); err != nil {
		return nil, err
	}
	d := &tcpDeployment{srv: srv, agent: a, direct: direct, viaAg: viaAg}
	if scrapeEnabled {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			d.close()
			return nil, err
		}
		d.adminLn = ln
		d.adminURL = "http://" + ln.Addr().String()
		go func() { _ = http.Serve(ln, a.AdminHandler()) }()
	}
	return d, nil
}

func (d *tcpDeployment) close() {
	if d.adminLn != nil {
		if err := printScrapeSummary(os.Stdout, d.adminURL+"/metrics"); err != nil {
			fmt.Fprintf(os.Stderr, "ecabench: metrics scrape: %v\n", err)
		}
		d.adminLn.Close()
	}
	d.viaAg.Close()
	d.direct.Close()
	d.agent.Close()
	d.srv.Close()
}

func measure(conn *client.Conn, sql string, rounds int) ([]time.Duration, error) {
	durs := make([]time.Duration, 0, rounds)
	for i := 0; i < rounds; i++ {
		start := time.Now()
		if _, err := conn.Exec(sql); err != nil {
			return nil, err
		}
		durs = append(durs, time.Since(start))
	}
	return durs, nil
}

func expPassthrough(w io.Writer) error {
	d, err := newTCPDeployment()
	if err != nil {
		return err
	}
	defer d.close()
	queries := []string{
		"select 1",
		"select count(*) from stock",
		"insert stock values ('X', 1)",
	}
	fmt.Fprintf(w, "%-36s %14s %14s %10s\n", "statement", "direct", "via agent", "overhead")
	for _, q := range queries {
		direct, err := measure(d.direct, q, expRounds)
		if err != nil {
			return err
		}
		viaAg, err := measure(d.viaAg, q, expRounds)
		if err != nil {
			return err
		}
		md, ma := median(direct), median(viaAg)
		fmt.Fprintf(w, "%-36s %14v %14v %9.1f%%\n", q, md, ma,
			100*(float64(ma)-float64(md))/float64(md))
	}
	fmt.Fprintln(w, "\n(medians; pass-through adds one protocol hop, as Figure 1 predicts)")
	return nil
}

func expEndToEnd(w io.Writer) error {
	d, err := newTCPDeployment()
	if err != nil {
		return err
	}
	defer d.close()
	if err := d.viaAg.MustExec("create trigger t_add on stock for insert event addStk as print 'ran'"); err != nil {
		return err
	}
	const rounds = 500
	durs := make([]time.Duration, 0, rounds)
	for i := 0; i < rounds; i++ {
		start := time.Now()
		if err := d.viaAg.MustExec("insert stock values ('Y', 2)"); err != nil {
			return err
		}
		select {
		case res := <-d.agent.ActionDone:
			if res.Err != nil {
				return res.Err
			}
		case <-time.After(5 * time.Second):
			return fmt.Errorf("action timed out")
		}
		durs = append(durs, time.Since(start))
	}
	fmt.Fprintf(w, "full loop (client DML -> native trigger -> UDP -> LED -> action proc):\n")
	fmt.Fprintf(w, "  median %v over %d rounds\n", median(durs), rounds)
	return nil
}

func expNotify(w io.Writer) error {
	// UDP transport vs direct in-process delivery of the same datagram.
	mkAgent := func(notifyAddr string) (*agent.Agent, *engine.Engine, error) {
		eng := engine.New(catalog.New())
		a, err := agent.New(agent.Config{Dial: agent.LocalDialer(eng), NotifyAddr: notifyAddr, Logf: func(string, ...any) {}})
		if err != nil {
			return nil, nil, err
		}
		seed := eng.NewSession("sharma")
		if _, err := seed.ExecScript("create database db use db create table stock (symbol varchar(10), price float null)"); err != nil {
			return nil, nil, err
		}
		cs, err := a.NewClientSession("sharma", "db")
		if err != nil {
			return nil, nil, err
		}
		defer cs.Close()
		if _, err := cs.Exec("create trigger t on stock for insert event ev as print 'x'"); err != nil {
			return nil, nil, err
		}
		return a, eng, nil
	}

	run := func(label string, wire func(a *agent.Agent, eng *engine.Engine)) error {
		a, eng, err := mkAgent("127.0.0.1:0")
		if err != nil {
			return err
		}
		defer a.Close()
		wire(a, eng)
		sess := eng.NewSession("sharma")
		_ = sess.Use("db")
		const rounds = 1000
		durs := make([]time.Duration, 0, rounds)
		for i := 0; i < rounds; i++ {
			start := time.Now()
			if _, err := sess.ExecScript("insert stock values ('A', 1)"); err != nil {
				return err
			}
			select {
			case <-a.ActionDone:
			case <-time.After(5 * time.Second):
				return fmt.Errorf("%s: action timed out", label)
			}
			durs = append(durs, time.Since(start))
		}
		fmt.Fprintf(w, "  %-22s median %v\n", label, median(durs))
		return nil
	}

	fmt.Fprintln(w, "DML to action completion, in-process engine, by notification transport:")
	if err := run("UDP (paper's design)", func(a *agent.Agent, eng *engine.Engine) {}); err != nil {
		return err
	}
	return run("in-process delivery", func(a *agent.Agent, eng *engine.Engine) {
		eng.SetNotifier(func(h string, p int, msg string) error { a.Deliver(msg); return nil })
	})
}

func expOperators(w io.Writer) error {
	ops := []struct{ name, expr string }{
		{"OR", "e1 | e2"},
		{"AND", "e1 ^ e2"},
		{"SEQ", "e1 ; e2"},
		{"NOT", "NOT(e1, e3, e2)"},
		{"A", "A(e1, e2, e3)"},
		{"A*", "A*(e1, e2, e3)"},
	}
	fmt.Fprintf(w, "%-6s %16s\n", "op", "ns/signal")
	for _, op := range ops {
		l := led.New(led.NewManualClock(time.Unix(0, 0)))
		for _, p := range []string{"e1", "e2", "e3"} {
			if err := l.DefinePrimitive(p); err != nil {
				return err
			}
		}
		expr, err := snoop.Parse(op.expr)
		if err != nil {
			return err
		}
		if err := l.DefineComposite("c", expr); err != nil {
			return err
		}
		count := 0
		if err := l.AddRule(&led.Rule{Name: "r", Event: "c", Context: led.Chronicle,
			Action: func(*led.Occ) { count++ }}); err != nil {
			return err
		}
		const rounds = 200000
		events := []string{"e1", "e2", "e3"}
		start := time.Now()
		for i := 0; i < rounds; i++ {
			l.Signal(led.Primitive{Event: events[i%3], VNo: i, At: time.Unix(0, int64(i))})
		}
		elapsed := time.Since(start)
		fmt.Fprintf(w, "%-6s %16.0f   (%d detections)\n", op.name,
			float64(elapsed.Nanoseconds())/rounds, count)
	}
	return nil
}

func expContexts(w io.Writer) error {
	fmt.Fprintf(w, "%-12s %16s %12s\n", "context", "ns/signal", "detections")
	for _, ctx := range []led.Context{led.Recent, led.Chronicle, led.Continuous, led.Cumulative} {
		l := led.New(led.NewManualClock(time.Unix(0, 0)))
		_ = l.DefinePrimitive("e1")
		_ = l.DefinePrimitive("e2")
		expr, _ := snoop.Parse("e1 ^ e2")
		_ = l.DefineComposite("c", expr)
		count := 0
		_ = l.AddRule(&led.Rule{Name: "r", Event: "c", Context: ctx,
			Action: func(*led.Occ) { count++ }})
		const rounds = 200000
		start := time.Now()
		for i := 0; i < rounds; i++ {
			ev := "e1"
			if i%2 == 1 {
				ev = "e2"
			}
			l.Signal(led.Primitive{Event: ev, VNo: i, At: time.Unix(0, int64(i))})
		}
		elapsed := time.Since(start)
		fmt.Fprintf(w, "%-12s %16.0f %12d\n", ctx,
			float64(elapsed.Nanoseconds())/rounds, count)
	}
	return nil
}

func expRecovery(w io.Writer) error {
	fmt.Fprintf(w, "%-8s %16s\n", "rules", "restart time")
	for _, n := range []int{1, 10, 50, 100} {
		eng := engine.New(catalog.New())
		quiet := func(string, ...any) {}
		a, err := agent.New(agent.Config{Dial: agent.LocalDialer(eng), NotifyAddr: "-", Logf: quiet})
		if err != nil {
			return err
		}
		seed := eng.NewSession("sharma")
		if _, err := seed.ExecScript("create database db use db create table stock (symbol varchar(10), price float null)"); err != nil {
			return err
		}
		cs, err := a.NewClientSession("sharma", "db")
		if err != nil {
			return err
		}
		if _, err := cs.Exec("create trigger t0 on stock for insert event ev0 as print 'x'"); err != nil {
			return err
		}
		for i := 1; i < n; i++ {
			if _, err := cs.Exec(fmt.Sprintf("create trigger t%d event ev0 as print 'x'", i)); err != nil {
				return err
			}
		}
		cs.Close()
		a.Close()

		start := time.Now()
		a2, err := agent.New(agent.Config{Dial: agent.LocalDialer(eng), NotifyAddr: "-", Logf: quiet})
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		if got := len(a2.Triggers()); got != n {
			return fmt.Errorf("restored %d of %d triggers", got, n)
		}
		a2.Close()
		fmt.Fprintf(w, "%-8d %16v\n", n, elapsed)
	}
	return nil
}

func expFanout(w io.Writer) error {
	fmt.Fprintf(w, "%-8s %20s\n", "rules", "DML->all actions done")
	for _, k := range []int{1, 2, 4, 8, 16} {
		eng := engine.New(catalog.New())
		a, err := agent.New(agent.Config{Dial: agent.LocalDialer(eng), NotifyAddr: "-", Logf: func(string, ...any) {}})
		if err != nil {
			return err
		}
		eng.SetNotifier(func(h string, p int, msg string) error { a.Deliver(msg); return nil })
		seed := eng.NewSession("sharma")
		if _, err := seed.ExecScript("create database db use db create table stock (symbol varchar(10), price float null)"); err != nil {
			return err
		}
		cs, err := a.NewClientSession("sharma", "db")
		if err != nil {
			return err
		}
		if _, err := cs.Exec("create trigger t0 on stock for insert event ev as print 'x'"); err != nil {
			return err
		}
		for i := 1; i < k; i++ {
			if _, err := cs.Exec(fmt.Sprintf("create trigger t%d event ev as print 'x'", i)); err != nil {
				return err
			}
		}
		const rounds = 200
		start := time.Now()
		for r := 0; r < rounds; r++ {
			if _, err := cs.Exec("insert stock values ('Z', 1)"); err != nil {
				return err
			}
			for i := 0; i < k; i++ {
				select {
				case <-a.ActionDone:
				case <-time.After(5 * time.Second):
					return fmt.Errorf("fanout action timed out")
				}
			}
		}
		elapsed := time.Since(start)
		fmt.Fprintf(w, "%-8d %20v\n", k, elapsed/time.Duration(rounds))
		cs.Close()
		a.Close()
	}
	return nil
}
