package main

import (
	"testing"

	"github.com/activedb/ecaagent/internal/analysis"
)

// TestSuiteCleanOnRepo dogfoods the suite over the whole module: every
// invariant holds (or carries a reasoned waiver) and no waiver is stale.
// A finding here is a regression in the codebase, not in the analyzers.
func TestSuiteCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and analyzes the whole module")
	}
	diags, fset, err := analysis.CheckPackages([]string{"github.com/activedb/ecaagent/..."}, suite)
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s: %s [%s]", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		t.Log("fix the finding or add //ecavet:allow <analyzer> <reason> at the site")
	}
}

// TestSuiteNames pins the analyzer names the waiver syntax depends on:
// renaming one silently orphans every //ecavet:allow referring to it.
func TestSuiteNames(t *testing.T) {
	want := []string{
		"nowallclock", "fsyncorder", "lockguard", "syncerr", "obsreg",
		"fencedwrite", "poolleak", "goroleak", "iodeadline", "waiverstale",
	}
	if len(suite) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(suite), len(want))
	}
	for i, a := range suite {
		if a.Name != want[i] {
			t.Errorf("suite[%d] = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("%s has no Doc", a.Name)
		}
	}
}
