// Command ecavet is the repo's static-analysis suite: ten analyzers that
// mechanize the agent's determinism, durability, concurrency, fencing
// and resource-lifecycle invariants (DESIGN.md §9).
//
// It speaks the `go vet -vettool` protocol, so the supported invocation
// is the one `make lint` uses:
//
//	go build -o bin/ecavet ./cmd/ecavet
//	go vet -vettool=bin/ecavet ./...
//
// which gives per-package caching and exact export data from the build.
// It also runs standalone over `go list` patterns for ad-hoc use, and
// lists the waiver ledger for audits:
//
//	go run ./cmd/ecavet ./internal/agent
//	go run ./cmd/ecavet -waivers ./...
package main

import (
	"github.com/activedb/ecaagent/internal/analysis"
	"github.com/activedb/ecaagent/internal/analysis/fencedwrite"
	"github.com/activedb/ecaagent/internal/analysis/fsyncorder"
	"github.com/activedb/ecaagent/internal/analysis/goroleak"
	"github.com/activedb/ecaagent/internal/analysis/iodeadline"
	"github.com/activedb/ecaagent/internal/analysis/lockguard"
	"github.com/activedb/ecaagent/internal/analysis/nowallclock"
	"github.com/activedb/ecaagent/internal/analysis/obsreg"
	"github.com/activedb/ecaagent/internal/analysis/poolleak"
	"github.com/activedb/ecaagent/internal/analysis/syncerr"
	"github.com/activedb/ecaagent/internal/analysis/waiverstale"
)

// Suite is the full analyzer set, in the order findings are reported:
// the five syntactic tier-1 passes, then the four CFG/facts tier-2
// passes, then the waiver-ledger check.
var suite = []*analysis.Analyzer{
	nowallclock.Analyzer,
	fsyncorder.Analyzer,
	lockguard.Analyzer,
	syncerr.Analyzer,
	obsreg.Analyzer,
	fencedwrite.Analyzer,
	poolleak.Analyzer,
	goroleak.Analyzer,
	iodeadline.Analyzer,
	waiverstale.Analyzer,
}

func main() {
	analysis.Main(suite)
}
