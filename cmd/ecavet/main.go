// Command ecavet is the repo's static-analysis suite: five analyzers that
// mechanize the agent's determinism, durability and concurrency
// invariants (DESIGN.md §9).
//
// It speaks the `go vet -vettool` protocol, so the supported invocation
// is the one `make lint` uses:
//
//	go build -o bin/ecavet ./cmd/ecavet
//	go vet -vettool=bin/ecavet ./...
//
// which gives per-package caching and exact export data from the build.
// It also runs standalone over `go list` patterns for ad-hoc use:
//
//	go run ./cmd/ecavet ./internal/agent
package main

import (
	"github.com/activedb/ecaagent/internal/analysis"
	"github.com/activedb/ecaagent/internal/analysis/fsyncorder"
	"github.com/activedb/ecaagent/internal/analysis/lockguard"
	"github.com/activedb/ecaagent/internal/analysis/nowallclock"
	"github.com/activedb/ecaagent/internal/analysis/obsreg"
	"github.com/activedb/ecaagent/internal/analysis/syncerr"
)

// Suite is the full analyzer set, in the order findings are reported.
var suite = []*analysis.Analyzer{
	nowallclock.Analyzer,
	fsyncorder.Analyzer,
	lockguard.Analyzer,
	syncerr.Analyzer,
	obsreg.Analyzer,
}

func main() {
	analysis.Main(suite)
}
