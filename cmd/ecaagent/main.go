// Command ecaagent runs the ECA Agent mediator of the paper: it connects
// to a running sqlserverd, restores any persisted ECA rules, and serves
// clients on its gateway address with full transparency — clients use the
// same protocol, and the same client library, as against the server
// itself.
//
// Usage:
//
//	ecaagent -server 127.0.0.1:5000 [-listen 127.0.0.1:6000]
//	         [-notify 127.0.0.1:0] [-admin dbo] [-http 127.0.0.1:6060]
//	         [-retry-attempts 4] [-retry-base 25ms] [-retry-max 1s]
//	         [-attempt-timeout 30s] [-resync 30s] [-drain 15s] [-dlq 128]
//	         [-checkpoint-dir dir] [-checkpoint-interval 30s] [-wal-sync always]
//	         [-site name -ged host:port]
//	         [-cluster-node name -repl-ship host:port | -repl-listen host:port]
//	         [-heartbeat-interval 500ms] [-heartbeat-misses 3]
//	         [-repl-mode async|sync] [-repl-degrade async|halt]
//	         [-repl-sync-window 4] [-repl-ack-timeout 2s] [-repl-grace 10s]
//	         [-authority-server host:port] [-authority-lease 5s]
//
// The -repl-ship / -repl-listen pair forms a replicated hot pair: the
// primary streams its durable state (checkpoints, WAL, rule definitions,
// heartbeats) to the standby, which promotes itself — boots the agent over
// the replicated directory — when the heartbeats stop. With
// -repl-mode sync an occurrence is acknowledged (and its actions launched)
// only after the standby durably applied its journal record: RPO=0, at
// the price of a standby round-trip on the occurrence path. -authority-server
// moves the fencing epoch into a leased row in the shared SQL server so a
// partitioned old primary's actions are rejected and dead-lettered. See
// cluster.go and DESIGN.md §10.
//
// The -http address serves the observability surface: /metrics (Prometheus
// text format), /healthz, /stats (JSON), /eventgraph (Graphviz dot), and
// /debug/pprof.
//
// With -checkpoint-dir set the agent is crash-safe: detector state is
// checkpointed there, accepted occurrences and completed actions are
// journaled in between, and a restart replays the journal over the latest
// checkpoint before gap-filling from the shadow tables — an exactly-once
// action stream across crashes under -wal-sync always or group (see
// DESIGN.md §8 for the guarantee matrix).
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"github.com/activedb/ecaagent/internal/agent"
	"github.com/activedb/ecaagent/internal/cluster"
	"github.com/activedb/ecaagent/internal/ged"
	"github.com/activedb/ecaagent/internal/led"
	"github.com/activedb/ecaagent/internal/obs"
)

func main() {
	serverAddr := flag.String("server", "127.0.0.1:5000", "address of the SQL server")
	listen := flag.String("listen", "127.0.0.1:6000", "gateway address clients connect to")
	notify := flag.String("notify", "127.0.0.1:0", "UDP address for trigger notifications")
	admin := flag.String("admin", "dbo", "privileged login for the persistent manager")
	retryAttempts := flag.Int("retry-attempts", 4, "attempts per upstream batch before giving up")
	retryBase := flag.Duration("retry-base", 25*time.Millisecond, "first retry backoff (doubles per retry)")
	retryMax := flag.Duration("retry-max", time.Second, "retry backoff cap")
	attemptTimeout := flag.Duration("attempt-timeout", 30*time.Second, "per-attempt upstream deadline (0 disables)")
	resync := flag.Duration("resync", 30*time.Second, "period of the notification-loss recovery sweep (0 disables)")
	drain := flag.Duration("drain", 15*time.Second, "shutdown deadline for in-flight rule actions")
	dlqLimit := flag.Int("dlq", 128, "dead-letter queue capacity for failed rule actions")
	ckptDir := flag.String("checkpoint-dir", "", "directory for durable checkpoints and the occurrence journal (empty disables crash safety)")
	ckptInterval := flag.Duration("checkpoint-interval", 30*time.Second, "period of the background checkpoint loop (0 = checkpoint only on shutdown)")
	walSync := flag.String("wal-sync", agent.WALSyncAlways, "journal sync policy: always (exactly-once), group (exactly-once, batched fsync), none (at-least-once)")
	site := flag.String("site", "", "site name for global event forwarding")
	gedAddr := flag.String("ged", "", "address of a global event detector to forward to")
	httpAddr := flag.String("http", "", "admin HTTP address for /metrics, /stats, /eventgraph, /debug/pprof (empty disables)")
	var cf clusterFlags
	registerClusterFlags(&cf)
	flag.Parse()
	cf.validate(*ckptDir)

	cfg := agent.Config{
		Dial:       agent.TCPDialer(*serverAddr),
		AdminUser:  *admin,
		NotifyAddr: *notify,
		Retry: agent.RetryConfig{
			MaxAttempts:    *retryAttempts,
			BaseDelay:      *retryBase,
			MaxDelay:       *retryMax,
			AttemptTimeout: *attemptTimeout,
		},
		ResyncInterval:  *resync,
		DrainTimeout:    *drain,
		DeadLetterLimit: *dlqLimit,
	}
	if *ckptDir != "" {
		switch *walSync {
		case agent.WALSyncAlways, agent.WALSyncGroup, agent.WALSyncNone:
		default:
			log.Fatalf("ecaagent: -wal-sync must be always, group or none (got %q)", *walSync)
		}
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			log.Fatalf("ecaagent: -checkpoint-dir: %v", err)
		}
		cfg.Durability = &agent.Durability{
			Dir:                *ckptDir,
			CheckpointInterval: *ckptInterval,
			WALSync:            *walSync,
		}
	}

	// Cluster mode. A standby blocks here applying the primary's stream
	// until promotion (or a signal); a primary tees its durability layer
	// through the replication shipper. Both register the eca_cluster_*
	// instruments on the same registry the agent's /metrics serves.
	var cmet *cluster.Metrics
	var repl *primaryReplication
	if cf.active() {
		reg := obs.NewRegistry()
		cfg.Metrics = reg
		cmet = cluster.NewMetrics(reg)
		var floorEpoch uint64
		if cf.listen != "" {
			floorEpoch = runStandbyPhase(&cf, *ckptDir, *httpAddr, reg, cmet)
		}
		if cf.ship != "" {
			repl = wirePrimaryReplication(&cf, &cfg, *ckptDir, *admin, floorEpoch, cmet)
			defer repl.stop()
		} else if cf.listen != "" {
			// Promoted with no onward standby: serve as a plain primary,
			// still fenced — the promotion must supersede the dead
			// primary's epoch on the shared authority before acting.
			auth, epoch, closeAuth := newAuthority(&cf, *admin, floorEpoch, cmet)
			defer closeAuth()
			tok := &cluster.Token{}
			tok.Set(epoch)
			cfg.Dial = cluster.FencedDialer(cfg.Dial, auth, tok, cmet)
			cmet.SetRole(cluster.RolePrimary)
		}
	}
	if *gedAddr != "" {
		if *site == "" {
			log.Fatal("ecaagent: -ged requires -site")
		}
		fwd, err := ged.Forwarder(*site, *gedAddr)
		if err != nil {
			log.Fatalf("ecaagent: %v", err)
		}
		cfg.Forward = func(p led.Primitive) {
			if err := fwd(p); err != nil {
				log.Printf("ecaagent: forwarding to GED: %v", err)
			}
		}
	}

	a, err := agent.New(cfg)
	if err != nil {
		log.Fatalf("ecaagent: %v", err)
	}
	defer a.Close()
	if cmet != nil {
		a.SetRoleFunc(cmet.Role)
		if repl != nil {
			repl.start(a)
		}
	}
	if err := a.ListenGateway(*listen); err != nil {
		log.Fatalf("ecaagent: %v", err)
	}
	host, port := a.NotifyEndpoint()
	fmt.Printf("ecaagent: gateway %s, server %s, notifications %s\n",
		a.GatewayAddr(), *serverAddr, net.JoinHostPort(host, strconv.Itoa(port)))
	if *httpAddr != "" {
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			log.Fatalf("ecaagent: admin http: %v", err)
		}
		fmt.Printf("ecaagent: admin http://%s/ (metrics, stats, eventgraph, debug/pprof)\n", ln.Addr())
		srv := &http.Server{Handler: a.AdminHandler()}
		defer srv.Close()
		go func() {
			if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
				log.Printf("ecaagent: admin http: %v", err)
			}
		}()
	}
	if events := a.Events(); len(events) > 0 {
		fmt.Printf("ecaagent: restored %d events, %d triggers\n", len(events), len(a.Triggers()))
	}

	// Drain action reports to the log so operators can see rules firing.
	go func() {
		for res := range a.ActionDone {
			if res.Err != nil {
				log.Printf("ecaagent: rule %s on %s FAILED: %v", res.Rule, res.Event, res.Err)
				continue
			}
			log.Printf("ecaagent: rule %s fired on %s (%d constituents)",
				res.Rule, res.Event, len(res.Occ.Constituents))
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Printf("ecaagent: shutting down")
}
