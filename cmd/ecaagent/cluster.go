// Cluster mode: the same binary plays primary or standby in the hot-pair
// deployment internal/cluster implements.
//
//   - Primary (-repl-ship addr): the durability layer's filesystem is teed
//     through a ShipFS, so every checkpoint byte and WAL record the agent
//     makes durable locally is also framed and streamed to the standby,
//     along with heartbeats and the rule-definition feed. Ship failures
//     degrade replication (counted, logged), never local durability.
//   - Standby (-repl-listen addr): the process applies the primary's
//     stream into -checkpoint-dir and watches the heartbeat cadence.
//     When the configured number of consecutive intervals pass without a
//     beat, it promotes: it stops replicating and boots the ordinary
//     agent over the replicated directory — checkpoint restore, journal
//     replay and the shadow-table resync do the actual recovery work.
//
// Fencing note: by default the epoch registry is in-process and protects a
// single machine. A deployment where the old primary may still be alive
// should set -authority-server so cluster.Authority is backed by shared
// state — a leased epoch row in the SQL server both nodes already talk to
// — and every upstream action is fenced against it: a partitioned zombie's
// actions are rejected and dead-lettered, and the zombie self-fences when
// its lease lapses; see DESIGN.md §10.
package main

import (
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"github.com/activedb/ecaagent/internal/agent"
	"github.com/activedb/ecaagent/internal/client"
	"github.com/activedb/ecaagent/internal/cluster"
	"github.com/activedb/ecaagent/internal/led"
	"github.com/activedb/ecaagent/internal/obs"
	"github.com/activedb/ecaagent/internal/storage"
)

// clusterFlags collects the cluster-mode command line.
type clusterFlags struct {
	node       string
	ship       string
	listen     string
	hbInterval time.Duration
	hbMisses   int

	replMode    string
	replDegrade string
	syncWindow  int
	ackTimeout  time.Duration
	grace       time.Duration

	authServer string
	authLease  time.Duration
}

func registerClusterFlags(cf *clusterFlags) {
	flag.StringVar(&cf.node, "cluster-node", "", "this node's name in the cluster (required with -repl-ship / -repl-listen)")
	flag.StringVar(&cf.ship, "repl-ship", "", "primary mode: stream checkpoints, WAL and heartbeats to the standby at this address")
	flag.StringVar(&cf.listen, "repl-listen", "", "standby mode: apply a primary's replication stream from this address, promote when its heartbeats stop")
	flag.DurationVar(&cf.hbInterval, "heartbeat-interval", 500*time.Millisecond, "heartbeat period (primary) and silence-check cadence (standby)")
	flag.IntVar(&cf.hbMisses, "heartbeat-misses", 3, "consecutive silent intervals before the standby suspects the primary")
	flag.StringVar(&cf.replMode, "repl-mode", cluster.ReplModeAsync,
		"replication acknowledgement mode: async (fire-and-forget, RPO = in-flight tail) or sync (occurrences acknowledged only after the standby's durable ack, RPO=0)")
	flag.StringVar(&cf.replDegrade, "repl-degrade", cluster.DegradeAsync,
		"sync-mode policy when the standby stops acknowledging: async (degrade loudly, keep serving) or halt (fence the durability path until the link heals)")
	flag.IntVar(&cf.syncWindow, "repl-sync-window", 4, "sync mode: max in-flight (shipped, unacknowledged) frames before Ship blocks")
	flag.DurationVar(&cf.ackTimeout, "repl-ack-timeout", 2*time.Second, "sync mode: per-record deadline for the standby's durable ack")
	flag.DurationVar(&cf.grace, "repl-grace", 10*time.Second, "sync mode: how long a degraded link may stay degraded before /readyz fails")
	flag.StringVar(&cf.authServer, "authority-server", "",
		"SQL server holding the shared fencing-epoch row (empty: in-process registry, single-machine only); every upstream action is fenced against it")
	flag.DurationVar(&cf.authLease, "authority-lease", 5*time.Second, "lease TTL on the SQL epoch row; an unrenewable holder self-fences when it lapses")
}

func (cf *clusterFlags) active() bool { return cf.ship != "" || cf.listen != "" }

func (cf *clusterFlags) validate(ckptDir string) {
	if !cf.active() {
		return
	}
	if cf.node == "" {
		log.Fatal("ecaagent: -cluster-node is required with -repl-ship / -repl-listen")
	}
	if ckptDir == "" {
		log.Fatal("ecaagent: cluster replication requires -checkpoint-dir (the replicated state lives there)")
	}
	switch cf.replMode {
	case cluster.ReplModeAsync, cluster.ReplModeSync:
	default:
		log.Fatalf("ecaagent: -repl-mode must be async or sync (got %q)", cf.replMode)
	}
	switch cf.replDegrade {
	case cluster.DegradeAsync, cluster.DegradeHalt:
	default:
		log.Fatalf("ecaagent: -repl-degrade must be async or halt (got %q)", cf.replDegrade)
	}
	if cf.replMode == cluster.ReplModeSync && cf.ship == "" {
		log.Fatal("ecaagent: -repl-mode sync requires -repl-ship (there is no standby to synchronize with)")
	}
}

// newAuthority builds the fencing authority: the epoch row in the shared
// SQL server when -authority-server is set (the deployment where the old
// primary may still be alive), otherwise the in-process registry (single
// machine only — see the fencing note above). floorEpoch is the dead
// primary's last announced epoch after a promotion; the new grant must
// supersede it, so Acquire repeats until it does (each call increments).
func newAuthority(cf *clusterFlags, adminUser string, floorEpoch uint64, met *cluster.Metrics) (auth cluster.Authority, epoch uint64, closeAuth func()) {
	closeAuth = func() {}
	if cf.authServer != "" {
		conn, err := client.Connect(cf.authServer, client.Options{User: adminUser, Timeout: 5 * time.Second})
		if err != nil {
			log.Fatalf("ecaagent: connecting to authority server %s: %v", cf.authServer, err)
		}
		sa, err := cluster.NewSQLAuthority(cluster.SQLAuthorityConfig{
			Exec:     conn,
			Node:     cf.node,
			LeaseTTL: cf.authLease,
			Logf:     log.Printf,
			Met:      met,
		})
		if err != nil {
			log.Fatalf("ecaagent: SQL epoch authority: %v", err)
		}
		auth = sa
		closeAuth = func() { sa.Close(); conn.Close() }
	} else {
		auth = cluster.NewEpochRegistry()
	}
	for {
		e, err := auth.Acquire(cf.node)
		if err != nil {
			closeAuth()
			log.Fatalf("ecaagent: acquiring fencing epoch: %v", err)
		}
		if e > floorEpoch {
			return auth, e, closeAuth
		}
	}
}

// runStandbyPhase applies the primary's stream until the missed-heartbeat
// threshold promotes this node (returns the highest fencing epoch the dead
// primary announced) or a signal stops the process. It runs before the
// agent exists; httpAddr, when set, serves a minimal probe surface
// (/livez, /readyz reporting "standby", /metrics) in the meantime.
func runStandbyPhase(cf *clusterFlags, ckptDir, httpAddr string, reg *obs.Registry, met *cluster.Metrics) (peerEpoch uint64) {
	met.SetRole(cluster.RoleStandby)
	ap := cluster.NewApplier(storage.OSDir{Dir: ckptDir}, met)
	promoted := make(chan struct{})
	mon := cluster.NewMonitor(cluster.MonitorConfig{
		Clock:    led.SystemClock(),
		Interval: cf.hbInterval,
		Misses:   cf.hbMisses,
	}, met, func() { close(promoted) })
	// Arm failure detection only once a primary has spoken: a standby that
	// boots first must wait for its primary, not promote over silence that
	// was never preceded by life.
	var arm sync.Once
	ap.OnHeartbeat = func(seq, epoch uint64) {
		arm.Do(mon.Start)
		mon.Beat(seq, epoch)
	}

	addr, stopListen, err := cluster.ListenStandby(cf.listen, ap)
	if err != nil {
		log.Fatalf("ecaagent: standby listener: %v", err)
	}
	log.Printf("ecaagent: standby %s: replicating into %s from %s (promote after %d×%s of silence)",
		cf.node, ckptDir, addr, cf.hbMisses, cf.hbInterval)

	var srv *http.Server
	if httpAddr != "" {
		ln, err := net.Listen("tcp", httpAddr)
		if err != nil {
			log.Fatalf("ecaagent: standby http: %v", err)
		}
		srv = &http.Server{Handler: standbyHandler(reg, met)}
		go func() {
			if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
				log.Printf("ecaagent: standby http: %v", err)
			}
		}()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case <-promoted:
	case <-stop:
		log.Printf("ecaagent: standby shutting down")
		mon.Stop()
		stopListen()
		if err := ap.Close(); err != nil {
			log.Printf("ecaagent: standby close: %v", err)
		}
		os.Exit(0)
	}
	signal.Stop(stop)

	// Promotion: stop replicating, release the probe port for the real
	// admin server, and let the ordinary boot path recover from the
	// replicated directory.
	mon.Stop()
	stopListen()
	if err := ap.Close(); err != nil {
		log.Printf("ecaagent: promoting with close error: %v", err)
	}
	if srv != nil {
		srv.Close()
	}
	met.SetRole(cluster.RolePromoting)
	met.Promotions.Inc()
	peer, epoch := ap.Peer()
	log.Printf("ecaagent: standby %s: primary %s went silent (epoch %d) — promoting", cf.node, peer, epoch)
	return epoch
}

// standbyHandler is the pre-promotion observability surface: liveness,
// a readiness probe that tells routers to keep notifications away, and
// the cluster metrics.
func standbyHandler(reg *obs.Registry, met *cluster.Metrics) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	live := func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	}
	mux.HandleFunc("/livez", live)
	mux.HandleFunc("/healthz", live)
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(met.Role() + "\n"))
	})
	return mux
}

// primaryReplication is the primary-side cluster wiring hung off the
// agent's config.
type primaryReplication struct {
	shipper   *cluster.Shipper
	hb        *cluster.Heartbeater
	ship      *cluster.ShipFS
	ctl       *cluster.SyncController // nil in async mode
	met       *cluster.Metrics
	closeAuth func()
	done      chan struct{} // closed by stop; ends watchLag
}

// wirePrimaryReplication tees cfg.Durability through a ShipFS streaming to
// the standby, hooks the rule-definition feed, and prepares the heartbeat
// beacon (started once the agent is up). floorEpoch carries the dead
// primary's epoch across a promotion so the new primary's announcements
// supersede it.
//
// Every upstream action runs behind a FencedDialer on the acquired epoch:
// with -authority-server that epoch lives in the shared SQL server and a
// partitioned old primary's actions are rejected (and dead-lettered) the
// moment a successor acquires or its own lease lapses.
//
// In -repl-mode sync the ShipFS sink ships AND barriers every frame — the
// durable append does not return until the standby has acknowledged — and
// the agent's occurrence path takes the controller's barrier before any
// acknowledgement or action launch. The degradation ladder is the
// controller's: sync → degraded-async (loud, readiness fails past
// -repl-grace) or → fenced halt, per -repl-degrade.
func wirePrimaryReplication(cf *clusterFlags, cfg *agent.Config, ckptDir, adminUser string, floorEpoch uint64, met *cluster.Metrics) *primaryReplication {
	auth, epoch, closeAuth := newAuthority(cf, adminUser, floorEpoch, met)
	tok := &cluster.Token{}
	tok.Set(epoch)
	cfg.Dial = cluster.FencedDialer(cfg.Dial, auth, tok, met)

	p := &primaryReplication{met: met, closeAuth: closeAuth, done: make(chan struct{})}
	var sh *cluster.Shipper
	// The sink dispatches on mode. Sync mode ships AND barriers every
	// frame — chain-replication semantics: occurrence records, action-done
	// records and checkpoint bytes are all standby-durable before the
	// local append returns, so the replica is always a superset of what
	// this node completed.
	sink := func(f cluster.Frame) error {
		err := sh.Ship(f)
		if p.ctl != nil {
			if err == nil {
				err = sh.Barrier()
			}
			p.ctl.ObserveShip(err)
		}
		return err
	}
	ship := cluster.NewShipFS(storage.OSDir{Dir: ckptDir}, sink, nil, met)
	p.ship = ship
	shipCfg := cluster.ShipperConfig{
		Addr:     cf.ship,
		Node:     cf.node,
		Tok:      tok,
		Snapshot: ship.SnapshotFrames,
	}
	if cf.replMode == cluster.ReplModeSync {
		shipCfg.SyncWindow = cf.syncWindow
		shipCfg.AckTimeout = cf.ackTimeout
	}
	sh = cluster.NewShipper(shipCfg, met)
	p.shipper = sh
	if cf.replMode == cluster.ReplModeSync {
		p.ctl = cluster.NewSyncController(cluster.SyncConfig{
			Mode:    cluster.ReplModeSync,
			Degrade: cf.replDegrade,
			Grace:   cf.grace,
			Logf:    log.Printf,
		}, sh.Barrier, met)
		cfg.Durability.ShipBarrier = p.ctl.Barrier
	}

	cfg.Durability.FS = ship
	cfg.DefinitionSink = func(record []byte) {
		if err := sh.Ship(cluster.Frame{Kind: cluster.FrameRule, Name: cf.node, Payload: record}); err != nil {
			log.Printf("ecaagent: shipping rule definition: %v", err)
		}
	}
	met.SetRole(cluster.RolePrimary)
	hb := cluster.NewHeartbeater(led.SystemClock(), cf.hbInterval, tok, sh.Ship, met)
	p.hb = hb
	return p
}

// start begins heartbeating (the first beat dials and re-ships the
// snapshot, so a standby attached later still converges) and, in sync
// mode, gates the agent's readiness on the replication link's health.
func (p *primaryReplication) start(a *agent.Agent) {
	if p.ctl != nil {
		a.SetReadinessGate(p.ctl.Ready)
	}
	p.hb.Start()
	go p.watchLag()
}

// watchLag logs transitions of the replication link so operators see a
// detached standby without scraping metrics.
func (p *primaryReplication) watchLag() {
	healthy := true
	t := time.NewTicker(5 * time.Second)
	defer t.Stop()
	for {
		select {
		case <-p.done:
			return
		case <-t.C:
		}
		err := p.ship.Err()
		if err != nil && healthy {
			log.Printf("ecaagent: replication degraded (local durability unaffected): %v", err)
			healthy = false
		} else if err == nil && !healthy {
			log.Printf("ecaagent: replication recovered")
			healthy = true
		}
	}
}

func (p *primaryReplication) stop() {
	close(p.done)
	p.hb.Stop()
	p.shipper.Close()
	p.closeAuth()
}
