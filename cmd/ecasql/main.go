// Command ecasql is an isql-like interactive client. It connects to either
// the SQL server or — identically — the ECA agent's gateway, demonstrating
// the transparency property of Figure 1. Statements accumulate until a
// line containing only "go", which sends the batch.
//
// Usage:
//
//	ecasql -addr 127.0.0.1:6000 [-user sharma] [-db sentineldb] [-cmd "select 1"]
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"github.com/activedb/ecaagent/internal/client"
	"github.com/activedb/ecaagent/internal/sqltypes"
	"github.com/activedb/ecaagent/internal/tds"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:6000", "server or agent gateway address")
	user := flag.String("user", "dbo", "login name")
	db := flag.String("db", "", "initial database")
	cmd := flag.String("cmd", "", "run one script and exit (GO-separated batches)")
	flag.Parse()

	c, err := client.Connect(*addr, client.Options{User: *user, Database: *db})
	if err != nil {
		log.Fatalf("ecasql: %v", err)
	}
	defer c.Close()

	if *cmd != "" {
		run(c, *cmd)
		return
	}

	fmt.Printf("ecasql: connected to %s as %s (end batches with 'go', quit with 'exit')\n", *addr, *user)
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var batch strings.Builder
	prompt := func() {
		if batch.Len() == 0 {
			fmt.Print("1> ")
		} else {
			fmt.Printf("%d> ", strings.Count(batch.String(), "\n")+2)
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(strings.ToLower(line))
		switch trimmed {
		case "exit", "quit":
			return
		case "go":
			run(c, batch.String())
			batch.Reset()
		case "reset":
			batch.Reset()
		default:
			batch.WriteString(line)
			batch.WriteByte('\n')
		}
		prompt()
	}
}

func run(c *client.Conn, sql string) {
	if strings.TrimSpace(sql) == "" {
		return
	}
	results, err := c.Exec(sql)
	for _, rs := range results {
		printResult(rs)
	}
	if err != nil {
		var se *tds.ServerError
		if errors.As(err, &se) {
			fmt.Printf("Msg: %s\n", se.Msg)
		} else {
			log.Fatalf("ecasql: connection error: %v", err)
		}
	}
}

func printResult(rs *sqltypes.ResultSet) {
	if rs.Schema != nil {
		fmt.Print(rs.Format())
		fmt.Printf("(%d rows affected)\n", len(rs.Rows))
	} else if rs.RowsAffected > 0 {
		fmt.Printf("(%d rows affected)\n", rs.RowsAffected)
	}
	for _, m := range rs.Messages {
		fmt.Println(m)
	}
}
