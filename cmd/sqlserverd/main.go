// Command sqlserverd runs the SQL server substrate: a standalone TCP
// server speaking the tds wire protocol, with optional snapshot
// persistence. It plays the role of the Sybase SQL Server in the paper's
// deployment (Figure 1).
//
// Usage:
//
//	sqlserverd [-addr 127.0.0.1:5000] [-snapshot path] [-checkpoint 30s] [-init script.sql]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/activedb/ecaagent/internal/catalog"
	"github.com/activedb/ecaagent/internal/engine"
	"github.com/activedb/ecaagent/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:5000", "TCP address to listen on")
	snapshot := flag.String("snapshot", "", "snapshot file for durability (loaded at start if present)")
	checkpoint := flag.Duration("checkpoint", 30*time.Second, "snapshot interval (0 disables periodic checkpoints)")
	initScript := flag.String("init", "", "SQL script to execute at startup (GO-separated batches)")
	flag.Parse()

	cat := catalog.New()
	if *snapshot != "" {
		if loaded, err := catalog.LoadFile(*snapshot); err == nil {
			cat = loaded
			log.Printf("sqlserverd: restored snapshot %s", *snapshot)
		} else if !os.IsNotExist(err) {
			log.Fatalf("sqlserverd: loading snapshot: %v", err)
		}
	}

	eng := engine.New(cat)
	if *initScript != "" {
		src, err := os.ReadFile(*initScript)
		if err != nil {
			log.Fatalf("sqlserverd: %v", err)
		}
		sess := eng.NewSession("dbo")
		if _, err := sess.ExecScript(string(src)); err != nil {
			log.Fatalf("sqlserverd: init script: %v", err)
		}
		log.Printf("sqlserverd: ran init script %s", *initScript)
	}

	srv := server.New(eng)
	srv.SnapshotPath = *snapshot
	if err := srv.Listen(*addr); err != nil {
		log.Fatalf("sqlserverd: %v", err)
	}
	fmt.Printf("sqlserverd: listening on %s\n", srv.Addr())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	var ticker *time.Ticker
	var tick <-chan time.Time
	if *snapshot != "" && *checkpoint > 0 {
		ticker = time.NewTicker(*checkpoint)
		tick = ticker.C
		defer ticker.Stop()
	}
	for {
		select {
		case <-tick:
			if err := srv.Checkpoint(); err != nil {
				log.Printf("sqlserverd: checkpoint: %v", err)
			}
		case <-stop:
			log.Printf("sqlserverd: shutting down")
			if err := srv.Checkpoint(); err != nil {
				log.Printf("sqlserverd: final checkpoint: %v", err)
			}
			srv.Close()
			return
		}
	}
}
