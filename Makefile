GO ?= go

.PHONY: check vet build test race fuzz

# The full pre-merge gate: static checks, a clean build, and the entire
# test suite under the race detector.
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzzing pass over the notification decoder (seed corpus always
# runs under plain `make test`; this explores further).
fuzz:
	$(GO) test -fuzz=FuzzParseNotification -fuzztime=10s ./internal/agent
