GO ?= go
ECAVET := bin/ecavet

.PHONY: check fmt vet lint lint-fix-check waivers build test race differential cep-differential crash-suite cluster-chaos fuzz bench-json bench-matrix bench-gate metrics-smoke

# The full pre-merge gate: static checks (including the ecavet invariant
# suite and the waiver-count ratchet), a clean build, the entire test
# suite under the race detector, an explicit pass over the sharded-LED
# differential equivalence suite, the crash-recovery differential matrix,
# the cluster failover chaos suite (all under -race), and the
# perf-regression gate against the committed BENCH_PR7.json baseline.
check: fmt vet lint lint-fix-check build race differential cep-differential crash-suite cluster-chaos bench-gate

# gofmt -l prints nonconforming files; any output fails the gate. The
# second check is waiver hygiene: every //ecavet:allow needs an analyzer
# name AND a reason, and `make fmt` rejects reasonless ones before the
# analyzers even run (fixtures under testdata exercise malformed waivers
# on purpose and are excluded).
fmt:
	@out=$$(gofmt -l . | grep -v testdata); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	@bad=$$(grep -rn --include='*.go' --exclude='*_test.go' -E '//ecavet:allow[[:space:]]*([[:alnum:]_]+[[:space:]]*)?$$' . | grep -v testdata); \
	if [ -n "$$bad" ]; then \
		echo "ecavet waivers need a reason (//ecavet:allow <analyzer> <reason>):"; echo "$$bad"; exit 1; fi

vet:
	$(GO) vet ./...

# The ecavet invariant suite (internal/analysis, DESIGN.md §9) run through
# go vet's -vettool protocol: per-package caching, exact export data, and
# findings formatted like any other vet diagnostic. Output tees to
# ecavet.log — CI ships the full diagnostic listing as an artifact when
# the gate goes red — while preserving go vet's exit status.
lint: $(ECAVET)
	@rm -f lint.exit; \
	( $(GO) vet -vettool=$(ECAVET) ./... 2>&1; echo $$? > lint.exit ) | tee ecavet.log; \
	status=$$(cat lint.exit); rm -f lint.exit; exit $$status

# The waiver ratchet (DESIGN.md §9): .ecavet-waivers is the committed
# audit listing (file:line, analyzer, reason — refresh with `make
# waivers`). Only the COUNT is enforced, so unrelated line drift never
# fails the gate: lint-fix-check fails when the live waiver count grows
# past the baseline without CHANGES.md declaring the new total as
# "waivers: N" — silent waiver creep is an escape hatch from every
# invariant the suite checks.
waivers: $(ECAVET)
	@./$(ECAVET) -waivers ./... | sed 's|^$(CURDIR)/||' > .ecavet-waivers
	@echo "waivers: $$(wc -l < .ecavet-waivers)"

lint-fix-check: $(ECAVET)
	@base=$$(wc -l < .ecavet-waivers); \
	cur=$$(./$(ECAVET) -waivers ./... | wc -l); \
	echo "waivers: $$cur (baseline $$base)"; \
	if [ "$$cur" -gt "$$base" ]; then \
		if ! grep -q "waivers: $$cur" CHANGES.md; then \
			echo "waiver count grew $$base -> $$cur without a 'waivers: $$cur' entry in CHANGES.md"; \
			echo "justify the new waivers there, then refresh the baseline: make waivers"; \
			exit 1; \
		fi; \
	fi

$(ECAVET): FORCE
	@mkdir -p bin
	$(GO) build -o $(ECAVET) ./cmd/ecavet

.PHONY: FORCE
FORCE:

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The operator x context x coupling equivalence proof for the sharded LED:
# every Snoop operator through a 1-shard oracle and an N-shard detector on
# the same clock, plus the randomized merge/split stress, under -race.
differential:
	$(GO) test -race -count=1 -run 'TestDifferential|TestStressConcurrentShards|TestShard' ./internal/led

# The CEP oracle-differential proof (DESIGN.md §12): every window,
# aggregate, and interval operator × context × coupling × shard topology
# against the brute-force reference interpreter in internal/led/oracle,
# plus the randomized window property test, under -race.
cep-differential:
	$(GO) test -race -count=1 -run 'TestCEPDifferential|TestWindowPropertyRandom' ./internal/led

# The crash-recovery equivalence proof: every Snoop operator under every
# parameter context, killed at three named crash points per cell with a
# fixed seed matrix, restarted over the surviving files, and required to
# reproduce the crash-free oracle's occurrence set and action multiset.
# The drain/DLQ/watermark restart satellites ride along, all under -race.
crash-suite:
	$(GO) test -race -count=1 -run 'TestCrashDifferential|TestDLQPersistsAcrossRestart|TestWatermarkSeededBeforeDeliver|TestCloseDrainDeadlineWedged|TestRecoveryMetricsExposed|TestWALDecodeDamage|TestCheckpointDecodeDamage|TestCheckpointRoundTrip' ./internal/agent

# The cluster failover proof (DESIGN.md §10): the hot pair killed at the
# agent's seven durability crash points plus the mid-replication windows,
# the promoted standby required to reproduce the crash-free oracle's
# occurrence set and action multiset for every Snoop operator x context,
# with promotion latency asserted on a deterministic clock; the sync-ship
# RPO=0 matrix and SQL-lease zombie cell (ISSUE 9); zombie fencing under
# a faults.Pipe partition, the affinity router's degradation ladder, and
# the replication frame/shipper/applier tests ride along. The hard
# -timeout turns a wedged promotion into a loud failure instead of a hung
# gate. Output tees to cluster-chaos.log (CI uploads it on failure), and
# CHAOS_SEED=<n> offsets every cell's deterministic seed — failures print
# the seed to replay with.
cluster-chaos:
	@rm -f cluster-chaos.exit; \
	( CHAOS_SEED=$(CHAOS_SEED) $(GO) test -race -count=1 -timeout 300s ./internal/cluster 2>&1; \
	  echo $$? > cluster-chaos.exit ) | tee cluster-chaos.log; \
	status=$$(cat cluster-chaos.exit); rm -f cluster-chaos.exit; \
	if [ "$$status" != 0 ] && [ -n "$(CHAOS_SEED)" ]; then \
		echo "cluster-chaos failed under CHAOS_SEED=$(CHAOS_SEED)"; fi; \
	exit $$status

# Short fuzzing passes over the notification decoders, the Snoop parser,
# and the checkpoint/journal decoders (seed corpora always run under
# plain `make test`; this explores further).
fuzz:
	$(GO) test -fuzz=FuzzParseNotification -fuzztime=10s ./internal/agent
	$(GO) test -fuzz=FuzzDecodeBatch -fuzztime=10s ./internal/agent
	$(GO) test -fuzz=FuzzBinaryDecode -fuzztime=10s ./internal/agent
	$(GO) test -fuzz=FuzzBinaryCodec -fuzztime=10s ./internal/agent
	$(GO) test -fuzz=FuzzLoadCheckpoint -fuzztime=10s ./internal/agent
	$(GO) test -fuzz=FuzzReplayWAL -fuzztime=10s ./internal/agent
	$(GO) test -fuzz=FuzzParse -fuzztime=10s ./internal/snoop

# Sharding ablation: concurrent detection throughput, single-lock vs
# sharded LED (see EXPERIMENTS.md). BENCH_OUT parametrizes the output so
# ad-hoc runs do not clobber the committed BENCH_PR3.json.
BENCH_OUT ?= BENCH_PR3.json
bench-json:
	$(GO) run ./cmd/ecabench -exp parallel -bench-json $(BENCH_OUT)

# GOMAXPROCS-matrixed ablation + gated micro-benchmarks: regenerates the
# perf baseline the gate compares against. Run this (on a quiet machine)
# when a deliberate perf change moves the needle, and commit the result.
BENCH7_OUT ?= BENCH_PR7.json
bench-matrix:
	$(GO) run ./cmd/ecabench -exp matrix -bench-json $(BENCH7_OUT)

# Perf-regression gate: re-measures the gated micro-benchmark set and
# fails on any allocs/op increase or a host-calibrated ns/op slowdown
# beyond GATE_THRESHOLD vs the committed baseline (EXPERIMENTS.md §PR7),
# then records the sync-ship overhead ablation (per-record ack latency
# and throughput, sync vs async, ISSUE 9) into BENCH_PR9.json.
GATE_BASELINE ?= BENCH_PR7.json
GATE_THRESHOLD ?= 0.10
BENCH_SYNC_OUT ?= BENCH_PR9.json
bench-gate:
	$(GO) run ./cmd/ecabench -exp gate -gate-baseline $(GATE_BASELINE) -gate-threshold $(GATE_THRESHOLD)
	$(GO) run ./cmd/ecabench -exp syncship -bench-json $(BENCH_SYNC_OUT)

# Live smoke test of the observability surface: stand up sqlserverd and
# ecaagent -http, then require a 200 with a non-empty Prometheus
# exposition from /metrics and a 200 from /healthz.
SMOKE_SERVER := 127.0.0.1:16950
SMOKE_GATEWAY := 127.0.0.1:16951
SMOKE_HTTP := 127.0.0.1:16952

metrics-smoke:
	@tmp=$$(mktemp -d); trap 'kill $$agent_pid $$server_pid 2>/dev/null; rm -rf $$tmp' EXIT; \
	$(GO) build -o $$tmp/sqlserverd ./cmd/sqlserverd || exit 1; \
	$(GO) build -o $$tmp/ecaagent ./cmd/ecaagent || exit 1; \
	$$tmp/sqlserverd -addr $(SMOKE_SERVER) & server_pid=$$!; \
	sleep 0.3; \
	$$tmp/ecaagent -server $(SMOKE_SERVER) -listen $(SMOKE_GATEWAY) -http $(SMOKE_HTTP) & agent_pid=$$!; \
	sleep 0.5; \
	body=$$(curl -fsS http://$(SMOKE_HTTP)/metrics) || { echo "metrics-smoke: /metrics unreachable"; exit 1; }; \
	[ -n "$$body" ] || { echo "metrics-smoke: /metrics empty"; exit 1; }; \
	echo "$$body" | grep -q '^eca_notifications_received_total' || { echo "metrics-smoke: exposition missing eca counters"; exit 1; }; \
	curl -fsS http://$(SMOKE_HTTP)/healthz >/dev/null || { echo "metrics-smoke: /healthz failed"; exit 1; }; \
	echo "metrics-smoke: OK ($$(echo "$$body" | grep -c '^eca_') eca series)"
