// Quickstart: turn the passive SQL server into an active database in ~60
// lines. An in-process deployment (engine + ECA agent) defines one
// primitive-event rule and watches it fire.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/activedb/ecaagent/internal/agent"
	"github.com/activedb/ecaagent/internal/catalog"
	"github.com/activedb/ecaagent/internal/engine"
)

func main() {
	// 1. A passive SQL server (in-process engine).
	eng := engine.New(catalog.New())

	// 2. The ECA agent mediating access to it.
	a, err := agent.New(agent.Config{
		Dial:       agent.LocalDialer(eng),
		NotifyAddr: "-", // in-process notification delivery
		Logf:       func(string, ...any) {},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer a.Close()
	eng.SetNotifier(func(host string, port int, msg string) error {
		a.Deliver(msg)
		return nil
	})

	// 3. A client session through the agent: ordinary SQL passes through.
	cs, err := a.NewClientSession("sharma", "")
	if err != nil {
		log.Fatal(err)
	}
	defer cs.Close()
	must(cs.Exec(`create database sentineldb`))
	must(cs.Exec(`use sentineldb
create table stock (symbol varchar(10), price float null)`))

	// 4. The paper's Example 1: an ECA rule in extended trigger syntax.
	results, err := cs.Exec(`create trigger t_addStk on stock for insert
event addStk
as print 'trigger t_addStk on primitive event addStk occurs'
select * from stock`)
	if err != nil {
		log.Fatal(err)
	}
	for _, rs := range results {
		for _, m := range rs.Messages {
			fmt.Println("agent:", m)
		}
	}

	// 5. Plain DML fires the rule asynchronously.
	must(cs.Exec("insert stock values ('IBM', 101.5)"))

	select {
	case res := <-a.ActionDone:
		fmt.Printf("rule %s fired on event %s\n", res.Rule, res.Event)
		for _, m := range res.Messages {
			fmt.Println("action:", m)
		}
		for _, rs := range res.Results {
			if rs.Schema != nil {
				fmt.Print(rs.Format())
			}
		}
	case <-time.After(5 * time.Second):
		log.Fatal("rule never fired")
	}
}

func must[T any](v T, err error) T {
	if err != nil {
		log.Fatal(err)
	}
	return v
}
