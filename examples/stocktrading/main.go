// Stock trading: the commodity-trading scenario the paper's introduction
// motivates, run as the full network deployment — sqlserverd and the ECA
// agent as separate TCP services, clients connected to the agent's
// gateway, notifications over UDP.
//
// Rules demonstrated:
//
//   - a primitive-event audit rule on every trade (Example 1 pattern)
//
//   - the paper's Example 2 composite: addDel = delStk ^ addStk
//
//   - a CUMULATIVE A* rule that batches all trades inside a session window
//
//     go run ./examples/stocktrading
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/activedb/ecaagent/internal/agent"
	"github.com/activedb/ecaagent/internal/catalog"
	"github.com/activedb/ecaagent/internal/client"
	"github.com/activedb/ecaagent/internal/engine"
	"github.com/activedb/ecaagent/internal/server"
)

func main() {
	// --- the SQL server process ---
	srv := server.New(engine.New(catalog.New()))
	srv.Logf = func(string, ...any) {}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Println("SQL server listening on", srv.Addr())

	// --- the ECA agent process ---
	a, err := agent.New(agent.Config{
		Dial: agent.TCPDialer(srv.Addr()),
		Logf: func(string, ...any) {},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer a.Close()
	if err := a.ListenGateway("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	host, port := a.NotifyEndpoint()
	fmt.Printf("ECA agent gateway on %s (UDP notifications on %s:%d)\n\n", a.GatewayAddr(), host, port)

	// --- a trading client, connected to the agent exactly as it would
	// connect to the server (transparency) ---
	c, err := client.Connect(a.GatewayAddr(), client.Options{User: "sharma"})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	mustExec(c, `create database trading
go
use trading
create table stock (symbol varchar(10), price float null)
create table session_log (note varchar(80) null)
go`)

	// Rule 1: audit every insert (primitive event).
	mustExec(c, `create trigger t_audit on stock for insert
event addStk
as insert session_log values ('trade recorded')`)

	// Rule 2: delete event + the paper's Example 2 composite.
	mustExec(c, `create trigger t_del on stock for delete
event delStk
as print 'position closed'`)
	mustExec(c, `create trigger t_and
event addDel = delStk ^ addStk
RECENT
as
print 'trigger t_and on composite event addDel = delStk ^ addStk'
select symbol, price from stock.inserted`)

	// Rule 3: batch all buys between session open and close (A* cumulative
	// window bracketed by explicit marker events).
	mustExec(c, `create table session_open (n int null)
create table session_close (n int null)`)
	mustExec(c, `create trigger t_open on session_open for insert
event sessOpen
as print 'session opened'`)
	mustExec(c, `create trigger t_close on session_close for insert
event sessClose
as print 'session closing'`)
	mustExec(c, `create trigger t_batch
event sessionBatch = A*(sessOpen, addStk, sessClose)
CUMULATIVE
as
print 'session closed: batched trades follow'
select symbol, price from stock.inserted`)

	fmt.Println("--- trading day begins ---")
	mustExec(c, "insert session_open values (1)")
	mustExec(c, "insert stock values ('IBM', 101.5)")
	mustExec(c, "insert stock values ('T', 22.25)")
	mustExec(c, "delete stock where symbol = 'T'") // completes addDel
	mustExec(c, "insert stock values ('HP', 48)")
	mustExec(c, "insert session_close values (1)") // closes the A* window

	// Collect asynchronous rule executions.
	deadline := time.After(10 * time.Second)
	fired := map[string]int{}
	// Expected: 1 open + 3 audits + 1 position-close + 2 composite addDel
	// (in RECENT context the delStk initiator is retained and re-pairs
	// with the later HP insert) + 1 close marker + 1 session batch
	// = 9 actions.
	for done := 0; done < 9; {
		select {
		case res := <-a.ActionDone:
			if res.Err != nil {
				log.Fatalf("rule %s failed: %v", res.Rule, res.Err)
			}
			fired[res.Rule]++
			done++
			fmt.Printf("\n[rule fired] %s on %s\n", res.Rule, res.Event)
			for _, m := range res.Messages {
				fmt.Println(" ", m)
			}
			for _, rs := range res.Results {
				if rs.Schema != nil && len(rs.Rows) > 0 {
					fmt.Print(indent(rs.Format()))
				}
			}
		case <-deadline:
			log.Fatalf("timed out; fired so far: %v", fired)
		}
	}

	fmt.Println("\n--- summary ---")
	rs, err := c.Query("select count(*) from session_log")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("audited trades: %s\n", rs.Rows[0][0].AsString())
	for rule, n := range fired {
		fmt.Printf("%-40s fired %d time(s)\n", rule, n)
	}
}

func mustExec(c *client.Conn, sql string) {
	if err := c.MustExec(sql); err != nil {
		log.Fatalf("%s\n-> %v", sql, err)
	}
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "    " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			lines = append(lines, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		lines = append(lines, cur)
	}
	return lines
}
