// Order workflow: the workflow / process-control scenario from the paper's
// introduction. An order moves through placed -> approved -> shipped
// tables; ECA rules chain the stages with SEQ, enforce priorities, and use
// DEFERRED coupling to hold audit work until an explicit boundary (the
// paper's future-work coupling mode, implemented here).
//
//	go run ./examples/workflow
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/activedb/ecaagent/internal/agent"
	"github.com/activedb/ecaagent/internal/catalog"
	"github.com/activedb/ecaagent/internal/engine"
)

func main() {
	eng := engine.New(catalog.New())
	a, err := agent.New(agent.Config{
		Dial:       agent.LocalDialer(eng),
		NotifyAddr: "-",
		Logf:       func(string, ...any) {},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer a.Close()
	eng.SetNotifier(func(h string, p int, msg string) error { a.Deliver(msg); return nil })

	cs, err := a.NewClientSession("ops", "")
	if err != nil {
		log.Fatal(err)
	}
	defer cs.Close()

	must(cs.Exec("create database orders"))
	must(cs.Exec(`use orders
create table placed (id int, item varchar(20) null)
create table approved (id int)
create table shipped (id int)
create table audit_log (entry varchar(80) null)`))

	// Stage events.
	must(cs.Exec("create trigger t_placed on placed for insert event orderPlaced as print 'stage: placed'"))
	must(cs.Exec("create trigger t_approved on approved for insert event orderApproved as print 'stage: approved'"))
	must(cs.Exec("create trigger t_shipped on shipped for insert event orderShipped as print 'stage: shipped'"))

	// The complete workflow: placed ; approved ; shipped, paired FIFO per
	// order (CHRONICLE), with the placed rows as parameters.
	must(cs.Exec(`create trigger t_complete
event fullCycle = orderPlaced ; orderApproved ; orderShipped
CHRONICLE
as
print 'workflow complete for:'
select id, item from placed.inserted`))

	// Two rules on the shipment event with different priorities: billing
	// must run before the courtesy email.
	must(cs.Exec("create trigger t_billing event orderShipped 10 as print 'billing: invoice issued'"))
	must(cs.Exec("create trigger t_email event orderShipped 1 as print 'email: shipment notice sent'"))

	// Deferred audit: queued on every stage, executed at the day boundary.
	must(cs.Exec(`create trigger t_audit event orderPlaced DEFERRED
as insert audit_log values ('order placed (audited at day end)')`))

	fmt.Println("--- order 1 moves through the workflow ---")
	must(cs.Exec("insert placed values (1, 'widgets')"))
	drain(a, 1) // t_placed (t_audit is deferred)
	must(cs.Exec("insert approved values (1)"))
	drain(a, 1) // t_approved
	must(cs.Exec("insert shipped values (1)"))
	// t_shipped + t_complete + t_billing + t_email, priorities first.
	order := drain(a, 4)
	if idx(order, "t_billing") > idx(order, "t_email") {
		log.Fatalf("priority violated: %v", order)
	}
	fmt.Println("  (billing ran before email: priorities honoured)")

	fmt.Println("--- day end: flush deferred audits ---")
	rs := must(cs.Query("select count(*) from audit_log"))
	fmt.Printf("  audit rows before flush: %s\n", rs.Rows[0][0].AsString())
	a.FlushDeferred()
	drain(a, 1) // the deferred t_audit
	rs = must(cs.Query("select count(*) from audit_log"))
	fmt.Printf("  audit rows after flush:  %s\n", rs.Rows[0][0].AsString())
	if rs.Rows[0][0].Int() != 1 {
		log.Fatal("deferred audit did not run")
	}
}

func drain(a *agent.Agent, n int) []string {
	var rules []string
	for i := 0; i < n; i++ {
		select {
		case res := <-a.ActionDone:
			if res.Err != nil {
				log.Fatalf("rule %s failed: %v", res.Rule, res.Err)
			}
			rules = append(rules, shortName(res.Rule))
			for _, m := range res.Messages {
				fmt.Printf("  [%s] %s\n", shortName(res.Rule), m)
			}
			for _, r := range res.Results {
				if r.Schema != nil && len(r.Rows) > 0 {
					fmt.Print("    " + r.Format())
				}
			}
		case <-time.After(5 * time.Second):
			log.Fatalf("timed out waiting for action %d/%d (saw %v)", i+1, n, rules)
		}
	}
	return rules
}

func idx(list []string, want string) int {
	for i, s := range list {
		if s == want {
			return i
		}
	}
	return -1
}

func shortName(internal string) string {
	for i := len(internal) - 1; i >= 0; i-- {
		if internal[i] == '.' {
			return internal[i+1:]
		}
	}
	return internal
}

func must[T any](v T, err error) T {
	if err != nil {
		log.Fatal(err)
	}
	return v
}
