// Network monitoring: the network-management scenario from the paper's
// introduction. Link failures and recoveries are rows inserted by probes;
// ECA rules detect silence (NOT), failure cascades (SEQ in CHRONICLE
// context), and run a periodic health check (P) — all without touching the
// monitoring application, which just INSERTs.
//
//	go run ./examples/networkmonitor
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/activedb/ecaagent/internal/agent"
	"github.com/activedb/ecaagent/internal/catalog"
	"github.com/activedb/ecaagent/internal/engine"
)

func main() {
	eng := engine.New(catalog.New())
	a, err := agent.New(agent.Config{
		Dial:       agent.LocalDialer(eng),
		NotifyAddr: "-",
		Logf:       func(string, ...any) {},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer a.Close()
	eng.SetNotifier(func(h string, p int, msg string) error { a.Deliver(msg); return nil })

	cs, err := a.NewClientSession("noc", "")
	if err != nil {
		log.Fatal(err)
	}
	defer cs.Close()

	must(cs.Exec(`create database netmon`))
	must(cs.Exec(`use netmon
create table failures (link varchar(20), detail varchar(60) null)
create table recoveries (link varchar(20))
create table probes (n int null)
create table escalations (note varchar(100) null)`))

	// Primitive events for the three probe feeds.
	must(cs.Exec("create trigger t_fail on failures for insert event linkDown as print 'failure logged'"))
	must(cs.Exec("create trigger t_rec on recoveries for insert event linkUp as print 'recovery logged'"))
	must(cs.Exec("create trigger t_probe on probes for insert event probeRun as print 'probe ran'"))

	// Rule: a probe completes and the link has NOT recovered since it went
	// down -> escalate, with the failing rows as parameters.
	must(cs.Exec(`create trigger t_escalate
event stillDown = NOT(linkDown, linkUp, probeRun)
as
insert escalations select link + ' (' + detail + ') still down at probe time' from failures.inserted
print 'ESCALATION: link outage confirmed by probe'`))

	// Rule: two failures in sequence (CHRONICLE pairs them FIFO) -> cascade
	// alarm.
	must(cs.Exec(`create trigger t_cascade
event cascade = linkDown ; linkDown
CHRONICLE
as print 'ALARM: cascading failures detected'`))

	fmt.Println("--- scenario 1: failure confirmed by probe (no recovery) ---")
	must(cs.Exec("insert failures values ('wan-1', 'fiber cut')"))
	must(cs.Exec("insert probes values (1)"))
	drain(a, 3) // t_fail, t_probe, t_escalate

	fmt.Println("--- scenario 2: failure followed by recovery: no escalation ---")
	must(cs.Exec("insert failures values ('wan-2', 'flap')"))
	drain(a, 2) // t_fail + t_cascade (wan-1 ; wan-2 pair FIFO)
	must(cs.Exec("insert recoveries values ('wan-2')"))
	must(cs.Exec("insert probes values (2)"))
	drain(a, 2) // t_rec, t_probe — no escalation this time

	fmt.Println("--- results ---")
	rs, err := cs.Query("select note from escalations")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rs.Format())
	if len(rs.Rows) != 1 {
		log.Fatalf("expected exactly one escalation, got %d", len(rs.Rows))
	}
	fmt.Println("exactly one escalation, as the NOT semantics require")
}

func drain(a *agent.Agent, n int) {
	for i := 0; i < n; i++ {
		select {
		case res := <-a.ActionDone:
			if res.Err != nil {
				log.Fatalf("rule %s failed: %v", res.Rule, res.Err)
			}
			for _, m := range res.Messages {
				fmt.Printf("  [%s] %s\n", shortName(res.Rule), m)
			}
		case <-time.After(5 * time.Second):
			log.Fatalf("timed out waiting for action %d/%d", i+1, n)
		}
	}
}

func shortName(internal string) string {
	for i := len(internal) - 1; i >= 0; i-- {
		if internal[i] == '.' {
			return internal[i+1:]
		}
	}
	return internal
}

func must[T any](v T, err error) T {
	if err != nil {
		log.Fatal(err)
	}
	return v
}
