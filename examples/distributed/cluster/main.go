// Cluster failover, end to end, with three real processes: a sqlserverd,
// a primary ecaagent replicating to a hot standby, and the standby
// ecaagent itself. The primary runs -repl-mode sync — every occurrence is
// acknowledged only after the standby's durable ack (RPO=0) — and both
// nodes fence their actions against a leased epoch row in the shared SQL
// server (-authority-server), so even a surviving zombie primary could
// not double-fire. The demo installs ECA rules through the primary's
// gateway, fires them, then SIGKILLs the primary mid-flight and watches
// the standby promote — recovering the rulebase and the detector state
// from the replicated checkpoint directory — before verifying that rules
// keep firing, exactly once, through the survivor's gateway.
//
//	go run ./examples/distributed/cluster
//
// Both agents are given the same -notify address: only the live primary
// binds it, so after the kill the promoted standby inherits the endpoint
// the server-side triggers already embed — the single-machine analog of a
// failover virtual IP.
package main

import (
	"bufio"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"github.com/activedb/ecaagent/internal/client"
)

func main() {
	work, err := os.MkdirTemp("", "eca-cluster-demo")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(work)

	fmt.Println("--- building sqlserverd and ecaagent ---")
	serverBin := build(work, "sqlserverd", "./cmd/sqlserverd")
	agentBin := build(work, "ecaagent", "./cmd/ecaagent")

	serverAddr := freePort()
	gwA, gwB := freePort(), freePort()
	httpA, httpB := freePort(), freePort()
	replAddr := freePort()
	notifyAddr := freePort() // shared: the failover "virtual IP"

	fmt.Println("--- process 1/3: sqlserverd on", serverAddr, "---")
	server := spawn("server ", serverBin, "-addr", serverAddr)
	defer stop(server)
	waitTCP(serverAddr, "sqlserverd")

	fmt.Println("--- process 2/3: standby agent replicating on", replAddr, "---")
	standby := spawn("standby", agentBin,
		"-server", serverAddr, "-listen", gwB, "-http", httpB, "-notify", notifyAddr,
		"-cluster-node", "bravo", "-repl-listen", replAddr,
		"-checkpoint-dir", filepath.Join(work, "bravo"),
		"-authority-server", serverAddr, "-authority-lease", "2s",
		"-heartbeat-interval", "300ms", "-heartbeat-misses", "3", "-resync", "2s")
	defer stop(standby)

	fmt.Println("--- process 3/3: primary agent sync-shipping to the standby ---")
	primary := spawn("primary", agentBin,
		"-server", serverAddr, "-listen", gwA, "-http", httpA, "-notify", notifyAddr,
		"-cluster-node", "alpha", "-repl-ship", replAddr,
		"-repl-mode", "sync", "-repl-degrade", "async", "-repl-grace", "5s",
		"-authority-server", serverAddr, "-authority-lease", "2s",
		"-checkpoint-dir", filepath.Join(work, "alpha"),
		"-checkpoint-interval", "2s", "-wal-sync", "always",
		"-heartbeat-interval", "300ms", "-resync", "2s")
	defer stop(primary)
	waitTCP(gwA, "primary gateway")

	fmt.Println("--- defining rules through the primary's gateway ---")
	c := connect(gwA, "")
	mustExec(c, "create database clusterdb")
	c.Close()
	c = connect(gwA, "clusterdb")
	mustExec(c, "create table readings (sensor varchar(20), v int null)\n"+
		"create table alerts (note varchar(60) null)")
	mustExec(c, "create trigger t_reading on readings for insert event newReading as insert alerts values ('reading recorded')")
	mustExec(c, "create trigger t_pair\nevent pair = newReading ; newReading\nCHRONICLE\nas insert alerts values ('pair completed')")

	fmt.Println("--- firing rules on the primary ---")
	mustExec(c, "insert readings values ('boiler-1', 17)")
	mustExec(c, "insert readings values ('boiler-2', 23)")
	waitAlerts(c, 3) // two primitive firings + the CHRONICLE pair (1,2)
	c.Close()
	fmt.Println("rules fired: 3 alerts recorded (2 primitive + 1 composite pair)")

	fmt.Println("--- SIGKILL the primary; the standby must take over ---")
	if err := primary.Process.Kill(); err != nil {
		log.Fatal(err)
	}
	waitPromotion(httpB)
	fmt.Println("standby promoted: /readyz on", httpB, "reports ready")

	// The crash-free oracle for 4 readings is 7 alerts: 4 primitive firings
	// plus the sliding CHRONICLE pairs (1,2), (2,3) and (3,4) — with the
	// same event as initiator and terminator, every reading after the first
	// completes a pair. Pair (2,3) STRADDLES the crash: its initiator,
	// reading 2, was detected by the dead primary and survives only because
	// the replicated journal replayed it into the survivor's detector.
	fmt.Println("--- firing the same rules through the survivor ---")
	c = connect(gwB, "clusterdb")
	mustExec(c, "insert readings values ('boiler-3', 31)")
	mustExec(c, "insert readings values ('boiler-4', 47)")
	waitAlerts(c, 7) // 4 more, and exactly 4: nothing lost, nothing doubled
	rs, err := c.Query("select note from alerts")
	if err != nil {
		log.Fatal(err)
	}
	c.Close()
	if len(rs.Rows) != 7 {
		log.Fatalf("alerts after failover = %d, want exactly 7 (the crash-free oracle)", len(rs.Rows))
	}
	fmt.Println("7 alerts total — the crash-free oracle count, including a pair straddling the failover")

	for _, line := range metricsLines(httpB, "eca_cluster_role", "eca_cluster_promotions_total",
		"eca_cluster_repl_degraded", "eca_cluster_auth_renewals_total") {
		fmt.Println("metric:", line)
	}
	fmt.Println("cluster failover demo complete")
}

func build(work, name, pkg string) string {
	bin := filepath.Join(work, name)
	cmd := exec.Command("go", "build", "-o", bin, pkg)
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		log.Fatalf("building %s: %v", pkg, err)
	}
	return bin
}

// spawn starts a child with its output prefixed into ours.
func spawn(tag string, bin string, args ...string) *exec.Cmd {
	cmd := exec.Command(bin, args...)
	out, err := cmd.StdoutPipe()
	if err != nil {
		log.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout // one interleaved stream per child
	go prefix(tag, out)
	if err := cmd.Start(); err != nil {
		log.Fatalf("starting %s: %v", tag, err)
	}
	return cmd
}

func prefix(tag string, r io.Reader) {
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fmt.Printf("  [%s] %s\n", tag, sc.Text())
	}
}

func stop(cmd *exec.Cmd) {
	if cmd.Process != nil {
		cmd.Process.Kill()
		cmd.Wait()
	}
}

func freePort() string {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func waitTCP(addr, what string) {
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if conn, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
			conn.Close()
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	log.Fatalf("%s never came up on %s", what, addr)
}

func connect(addr, db string) *client.Conn {
	c, err := client.Connect(addr, client.Options{User: "dbo", Database: db, Timeout: 5 * time.Second})
	if err != nil {
		log.Fatalf("connecting to %s: %v", addr, err)
	}
	return c
}

func mustExec(c *client.Conn, sql string) {
	if _, err := c.Exec(sql); err != nil {
		log.Fatalf("exec %q: %v", sql, err)
	}
}

// waitAlerts polls until the alerts table reaches want rows (rule actions
// are asynchronous).
func waitAlerts(c *client.Conn, want int) {
	deadline := time.Now().Add(20 * time.Second)
	got := -1
	for time.Now().Before(deadline) {
		rs, err := c.Query("select note from alerts")
		if err == nil {
			got = len(rs.Rows)
			if got >= want {
				if got > want {
					log.Fatalf("alerts = %d, want %d: an action double-fired", got, want)
				}
				return
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	log.Fatalf("alerts stuck at %d, want %d", got, want)
}

// waitPromotion polls the standby's /readyz until the promoted agent
// answers 200 — through the standby phase (503 "standby"), the probe-port
// handover, recovery, and readiness.
func waitPromotion(httpAddr string) {
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + httpAddr + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	log.Fatal("standby never promoted to ready")
}

// metricsLines scrapes /metrics and returns the lines for the named
// families.
func metricsLines(httpAddr string, families ...string) []string {
	resp, err := http.Get("http://" + httpAddr + "/metrics")
	if err != nil {
		log.Printf("scraping metrics: %v", err)
		return nil
	}
	defer resp.Body.Close()
	var out []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		for _, f := range families {
			if strings.HasPrefix(line, f) {
				out = append(out, line)
			}
		}
	}
	return out
}
