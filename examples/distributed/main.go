// Distributed active capability: the paper's §6 future-work extension.
// Two independent sites — each a SQL server fronted by its own ECA agent —
// forward their primitive events over UDP to a Global Event Detector,
// which detects composite events spanning both and reacts by writing back
// into one of the sites.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/activedb/ecaagent/internal/agent"
	"github.com/activedb/ecaagent/internal/catalog"
	"github.com/activedb/ecaagent/internal/engine"
	"github.com/activedb/ecaagent/internal/ged"
	"github.com/activedb/ecaagent/internal/led"
)

type site struct {
	name  string
	agent *agent.Agent
	cs    *agent.ClientSession
}

func newSite(name string, g *ged.GED) *site {
	eng := engine.New(catalog.New())
	fwd, err := ged.Forwarder(name, g.Addr())
	if err != nil {
		log.Fatal(err)
	}
	a, err := agent.New(agent.Config{
		Dial:       agent.LocalDialer(eng),
		NotifyAddr: "-",
		Logf:       func(string, ...any) {},
		Forward:    func(p led.Primitive) { _ = fwd(p) },
	})
	if err != nil {
		log.Fatal(err)
	}
	eng.SetNotifier(func(h string, p int, msg string) error { a.Deliver(msg); return nil })
	cs := mustV(a.NewClientSession("ops", ""))
	must(cs.Exec("create database plant"))
	must(cs.Exec(`use plant
create table sensor_alarms (sensor varchar(20), reading float null)
create table shutdown_orders (reason varchar(80) null)`))
	must(cs.Exec("create trigger t_alarm on sensor_alarms for insert event alarm as print 'local alarm recorded'"))
	return &site{name: name, agent: a, cs: cs}
}

func main() {
	// The GED service.
	g := ged.New(nil)
	if err := g.Listen("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	defer g.Close()
	fmt.Println("GED listening on", g.Addr())

	for _, s := range []string{"plantA", "plantB"} {
		if err := g.RegisterSite(s); err != nil {
			log.Fatal(err)
		}
	}

	siteA := newSite("plantA", g)
	defer siteA.agent.Close()
	siteB := newSite("plantB", g)
	defer siteB.agent.Close()

	// Global rule: alarms at BOTH plants (any order) -> order a shutdown
	// at plant A. The global event spans systems no single trigger could
	// watch (§2.2 limitation 4, lifted across machines).
	if err := g.DefineGlobalEvent("bothPlants",
		"plant.ops.alarm::plantA ^ plant.ops.alarm::plantB"); err != nil {
		log.Fatal(err)
	}
	shutdownDone := make(chan struct{}, 1)
	err := g.AddRule(&led.Rule{
		Name: "globalShutdown", Event: "bothPlants", Context: led.Recent,
		Action: func(o *led.Occ) {
			fmt.Printf("GED: bothPlants detected (%d constituents) — ordering shutdown\n",
				len(o.Constituents))
			if _, err := siteA.cs.Exec(
				"insert shutdown_orders values ('correlated alarms at plantA and plantB')"); err != nil {
				log.Printf("shutdown order failed: %v", err)
			}
			shutdownDone <- struct{}{}
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("--- alarms fire at both plants ---")
	must(siteA.cs.Exec("insert sensor_alarms values ('reactor-7', 412.5)"))
	must(siteB.cs.Exec("insert sensor_alarms values ('turbine-2', 98.1)"))

	select {
	case <-shutdownDone:
	case <-time.After(10 * time.Second):
		log.Fatal("global event never detected")
	}

	rs := mustV(siteA.cs.Query("select reason from shutdown_orders"))
	fmt.Print(rs.Format())
	if len(rs.Rows) != 1 {
		log.Fatalf("expected one shutdown order, got %d", len(rs.Rows))
	}
	fmt.Println("distributed ECA rule executed: shutdown ordered at plantA")
}

func must[T any](v T, err error) T { return mustV(v, err) }
func mustV[T any](v T, err error) T {
	if err != nil {
		log.Fatal(err)
	}
	return v
}
